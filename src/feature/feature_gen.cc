#include "src/feature/feature_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/prepared.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace fairem {
namespace {

constexpr size_t kShortStringMaxAvgLen = 24;
constexpr double kShortStringMaxAvgTokens = 3.0;

/// A FeatureDef with its attribute resolved to column indices once, so the
/// per-pair loop never goes back through schema().Index.
struct ResolvedDef {
  size_t col_a = 0;
  size_t col_b = 0;
  SimilarityMeasure measure = SimilarityMeasure::kExactMatch;
};

Result<std::vector<ResolvedDef>> ResolveDefs(
    const std::vector<FeatureDef>& defs, const Table& a, const Table& b) {
  std::vector<ResolvedDef> resolved;
  resolved.reserve(defs.size());
  for (const auto& def : defs) {
    ResolvedDef r;
    FAIREM_ASSIGN_OR_RETURN(r.col_a, a.schema().Index(def.attr));
    FAIREM_ASSIGN_OR_RETURN(r.col_b, b.schema().Index(def.attr));
    r.measure = def.measure;
    resolved.push_back(r);
  }
  return resolved;
}

/// Sorted-unique row indices referenced on one side of a pair list.
std::vector<size_t> ReferencedRows(const std::vector<LabeledPair>& pairs,
                                   bool left_side) {
  std::vector<size_t> rows;
  rows.reserve(pairs.size());
  for (const auto& p : pairs) rows.push_back(left_side ? p.left : p.right);
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

/// Both sides' prepared columns: every column pair some def touches,
/// tokenized once per referenced record with exactly the representations
/// the measures on that pair need. Built pairwise (not per side) because
/// the interned-token fast path needs one TokenInterner spanning both
/// sides of a column pair — ids from separate interners would not be
/// comparable (DESIGN.md §17). The a-side interns first, then the b-side
/// extends the same universe; the interners are dropped here once the ids
/// are baked into the PreparedValues.
class PreparedPair {
 public:
  void Build(const Table& a, const Table& b,
             const std::vector<ResolvedDef>& defs,
             const std::vector<LabeledPair>& pairs) {
    std::map<std::pair<size_t, size_t>, PreparedNeeds> needs;
    for (const auto& def : defs) {
      needs[{def.col_a, def.col_b}].MergeFrom(NeedsForMeasure(def.measure));
    }
    std::vector<size_t> rows_a = ReferencedRows(pairs, /*left_side=*/true);
    std::vector<size_t> rows_b = ReferencedRows(pairs, /*left_side=*/false);
    for (const auto& [cols, pair_needs] : needs) {
      ColumnInterners interners;
      columns_a_[cols.first].BuildRows(a, cols.first, rows_a, pair_needs,
                                       &interners);
      columns_b_[cols.second].BuildRows(b, cols.second, rows_b, pair_needs,
                                        &interners);
    }
  }

  const PreparedValue& GetA(size_t col, size_t row) const {
    return columns_a_.at(col).Get(row);
  }
  const PreparedValue& GetB(size_t col, size_t row) const {
    return columns_b_.at(col).Get(row);
  }

 private:
  std::map<size_t, PreparedColumn> columns_a_;
  std::map<size_t, PreparedColumn> columns_b_;
};

}  // namespace

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kNumeric:
      return "numeric";
    case AttrType::kShortString:
      return "short_string";
    case AttrType::kLongString:
      return "long_string";
  }
  return "unknown";
}

Result<AttrType> InferAttrType(const Table& a, const Table& b,
                               const std::string& attr) {
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr));
  size_t non_null = 0;
  size_t numeric = 0;
  size_t total_len = 0;
  size_t total_tokens = 0;
  auto scan = [&](const Table& t, size_t col) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.IsNull(r, col)) continue;
      std::string_view v = t.value(r, col);
      ++non_null;
      if (ParseDouble(v, nullptr)) ++numeric;
      total_len += v.size();
      total_tokens += CountWhitespaceTokens(v);
    }
  };
  scan(a, col_a);
  scan(b, col_b);
  if (non_null == 0) return AttrType::kShortString;
  if (numeric == non_null) return AttrType::kNumeric;
  double avg_len = static_cast<double>(total_len) / non_null;
  double avg_tokens = static_cast<double>(total_tokens) / non_null;
  if (avg_len <= kShortStringMaxAvgLen &&
      avg_tokens <= kShortStringMaxAvgTokens) {
    return AttrType::kShortString;
  }
  return AttrType::kLongString;
}

Result<std::vector<FeatureDef>> GenerateFeatures(
    const Table& a, const Table& b, const std::vector<std::string>& attrs) {
  Span span("fairem.feature.generate_defs");
  span.AddArg("attrs", std::to_string(attrs.size()));
  std::vector<FeatureDef> defs;
  for (const auto& attr : attrs) {
    FAIREM_ASSIGN_OR_RETURN(AttrType type, InferAttrType(a, b, attr));
    switch (type) {
      case AttrType::kNumeric:
        defs.push_back({attr, SimilarityMeasure::kExactMatch});
        defs.push_back({attr, SimilarityMeasure::kNumericAbsDiff});
        break;
      case AttrType::kShortString:
        defs.push_back({attr, SimilarityMeasure::kExactMatch});
        defs.push_back({attr, SimilarityMeasure::kLevenshtein});
        defs.push_back({attr, SimilarityMeasure::kJaro});
        defs.push_back({attr, SimilarityMeasure::kJaroWinkler});
        defs.push_back({attr, SimilarityMeasure::kJaccardQgram3});
        defs.push_back({attr, SimilarityMeasure::kNeedlemanWunsch});
        break;
      case AttrType::kLongString:
        // Word-token measures only, as in Magellan's defaults for long
        // text: character-gram measures are not generated here, which is
        // why token-formatting variance defeats the non-neural matchers on
        // the textual datasets (§5.3.3).
        defs.push_back({attr, SimilarityMeasure::kJaccardWord});
        defs.push_back({attr, SimilarityMeasure::kCosineWord});
        defs.push_back({attr, SimilarityMeasure::kDiceWord});
        defs.push_back({attr, SimilarityMeasure::kOverlapWord});
        break;
    }
  }
  static Counter* defs_counter =
      MetricsRegistry::Global().GetCounter("fairem.feature.defs_generated");
  defs_counter->Increment(defs.size());
  return defs;
}

Result<std::vector<double>> ExtractFeatures(
    const std::vector<FeatureDef>& defs, const Table& a, const Table& b,
    size_t left_row, size_t right_row) {
  FAIREM_ASSIGN_OR_RETURN(std::vector<ResolvedDef> resolved,
                          ResolveDefs(defs, a, b));
  std::vector<double> features;
  features.reserve(defs.size());
  for (const auto& def : resolved) {
    if (a.IsNull(left_row, def.col_a) || b.IsNull(right_row, def.col_b)) {
      features.push_back(0.0);
      continue;
    }
    features.push_back(ComputeSimilarity(def.measure,
                                         a.value(left_row, def.col_a),
                                         b.value(right_row, def.col_b)));
  }
  return features;
}

Result<FeatureTable> BuildFeatureTable(const std::vector<FeatureDef>& defs,
                                       const Table& a, const Table& b,
                                       const std::vector<LabeledPair>& pairs) {
  static Histogram* build_hist = MetricsRegistry::Global().GetHistogram(
      "fairem.feature.build_table_seconds");
  double seconds = 0.0;
  Result<FeatureTable> result = [&]() -> Result<FeatureTable> {
    Span span("fairem.feature.build_table", &seconds);
    span.AddArg("pairs", std::to_string(pairs.size()));
    span.AddArg("defs", std::to_string(defs.size()));
    static Counter* rows_counter =
        MetricsRegistry::Global().GetCounter("fairem.feature.rows_built");
    static Counter* values_counter =
        MetricsRegistry::Global().GetCounter("fairem.feature.values_computed");
    rows_counter->Increment(pairs.size());
    values_counter->Increment(pairs.size() * defs.size());

    // Columns resolve once per def (not once per pair), and every
    // referenced record is lowercased/tokenized/q-grammed exactly once
    // into the prepared cache the pairwise kernels read.
    FAIREM_ASSIGN_OR_RETURN(std::vector<ResolvedDef> resolved,
                            ResolveDefs(defs, a, b));
    PreparedPair prepared;
    prepared.Build(a, b, resolved, pairs);

    FeatureTable table;
    table.defs = defs;
    table.rows.assign(pairs.size(), {});
    table.labels.assign(pairs.size(), 0);
    // Row chunks write disjoint slots in pair order, so the matrix is
    // byte-identical for any --intra_jobs; the first non-finite feature by
    // pair index wins the error, again independent of the schedule.
    FAIREM_RETURN_NOT_OK(ParallelForChunks(
        pairs.size(), /*grain=*/0, [&](size_t begin, size_t end) -> Status {
          uint64_t cache_hits = 0;
          for (size_t i = begin; i < end; ++i) {
            const LabeledPair& p = pairs[i];
            std::vector<double> row;
            row.reserve(resolved.size());
            for (const auto& def : resolved) {
              const PreparedValue& va = prepared.GetA(def.col_a, p.left);
              const PreparedValue& vb = prepared.GetB(def.col_b, p.right);
              if (va.is_null || vb.is_null) {
                row.push_back(0.0);
                continue;
              }
              cache_hits += 2;
              row.push_back(ComputeSimilarity(def.measure, va, vb));
            }
            for (size_t f = 0; f < row.size(); ++f) {
              if (!std::isfinite(row[f])) {
                AddPreparedCacheHits(cache_hits);
                return Status::InvalidArgument(
                    "non-finite feature value for attribute '" +
                    defs[f].attr + "'");
              }
            }
            table.rows[i] = std::move(row);
            table.labels[i] = p.is_match ? 1 : 0;
          }
          AddPreparedCacheHits(cache_hits);
          return Status::OK();
        }));
    return table;
  }();
  if (result.ok()) build_hist->Observe(seconds);
  return result;
}

}  // namespace fairem
