#ifndef FAIREM_FEATURE_FEATURE_GEN_H_
#define FAIREM_FEATURE_FEATURE_GEN_H_

#include <string>
#include <vector>

#include "src/block/blocker.h"
#include "src/data/dataset.h"
#include "src/data/table.h"
#include "src/text/similarity.h"
#include "src/util/result.h"

namespace fairem {

/// Inferred attribute type driving which similarity features are generated
/// (the Magellan "automatic feature generation" convention the paper uses
/// for all non-neural matchers, §5.1.4).
enum class AttrType {
  kNumeric,      // all non-null values parse as numbers
  kShortString,  // short, mostly single-token values (names, years, venues)
  kLongString,   // multi-token textual values (titles, descriptions)
};

const char* AttrTypeName(AttrType type);

/// Infers the type of `attr` from the non-null values of both tables.
Result<AttrType> InferAttrType(const Table& a, const Table& b,
                               const std::string& attr);

/// One generated feature: a (attribute, similarity measure) pair.
struct FeatureDef {
  std::string attr;
  SimilarityMeasure measure;

  /// Stable display name, e.g. "title_jaccard_word".
  std::string name() const {
    return attr + "_" + SimilarityMeasureName(measure);
  }
};

/// Generates the feature set for the given matching attributes, mirroring
/// Magellan: numeric attributes get exact + numeric distance; short strings
/// get character-level measures; long strings get token-level measures.
Result<std::vector<FeatureDef>> GenerateFeatures(
    const Table& a, const Table& b, const std::vector<std::string>& attrs);

/// Computes the feature vector for one pair. Features over a null cell (on
/// either side) evaluate to 0, matching the "fill missing with 0" policy.
Result<std::vector<double>> ExtractFeatures(
    const std::vector<FeatureDef>& defs, const Table& a, const Table& b,
    size_t left_row, size_t right_row);

/// Extracts the feature matrix and label vector for a set of labelled pairs.
struct FeatureTable {
  std::vector<FeatureDef> defs;
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;  // 1 = match, 0 = non-match
};

Result<FeatureTable> BuildFeatureTable(const std::vector<FeatureDef>& defs,
                                       const Table& a, const Table& b,
                                       const std::vector<LabeledPair>& pairs);

}  // namespace fairem

#endif  // FAIREM_FEATURE_FEATURE_GEN_H_
