#ifndef FAIREM_HARNESS_EXPERIMENT_H_
#define FAIREM_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/core/audit.h"
#include "src/data/dataset.h"
#include "src/matcher/matcher.h"
#include "src/ml/metrics.h"
#include "src/robust/checkpoint.h"
#include "src/robust/retry.h"
#include "src/util/result.h"

namespace fairem {

/// Everything the paper's per-(matcher, dataset) cells need: the trained
/// matcher's test scores, its confusion matrix at the dataset's default
/// threshold, and the derived correctness metrics.
struct MatcherRun {
  std::string matcher_name;
  MatcherKind kind = MatcherKind::kDT;
  bool supported = true;  // false mirrors Table 9's "-" cells (Dedupe)
  std::vector<double> test_scores;
  ConfusionCounts counts;
  double accuracy = 0.0;
  double f1 = 0.0;
  /// Wall time of Fit/PredictScores, measured on the monotonic clock by the
  /// same Span (src/obs/trace.h) that records the trace event — the two can't disagree.
  double fit_seconds = 0.0;
  double predict_seconds = 0.0;
};

/// Trains `kind` on `dataset` with the given seed and scores the test
/// split. Unsupported (matcher, dataset) combinations return a MatcherRun
/// with supported = false rather than an error.
Result<MatcherRun> RunMatcher(const EMDataset& dataset, MatcherKind kind,
                              uint64_t seed = 1234);

/// Convenience: the single-fairness audit of a run at the dataset's
/// default threshold.
Result<AuditReport> AuditRunSingle(const EMDataset& dataset,
                                   const MatcherRun& run,
                                   const AuditOptions& options = {});

/// Convenience: the pairwise-fairness audit of a run.
Result<AuditReport> AuditRunPairwise(const EMDataset& dataset,
                                     const MatcherRun& run,
                                     const AuditOptions& options = {});

/// Builds the FairnessAuditor for a dataset's sensitive attribute.
Result<FairnessAuditor> MakeAuditor(const EMDataset& dataset);

/// Per-group TPR/PPV/FDR-style breakdown used by Tables 5 and 6.
struct GroupRates {
  std::string group;
  ConfusionCounts counts;
};

/// Single-fairness per-group confusion matrices at the default threshold.
Result<std::vector<GroupRates>> GroupBreakdown(const EMDataset& dataset,
                                               const MatcherRun& run);

/// Fault-tolerance knobs of the batch audit (Algorithm 1's outer loop).
struct GridRunOptions {
  AuditOptions audit;
  /// Matcher kinds to leave out entirely.
  std::vector<MatcherKind> skip;
  /// Per-cell retry policy for transient (kInternal / kIOError) failures.
  RetryPolicy retry;
  /// When non-empty, each completed cell is persisted here atomically
  /// (temp + rename JSON) and an interrupted run resumes by replaying the
  /// persisted cells instead of re-running them. Cells that failed after
  /// retries are persisted too — delete a cell's file to force a re-run.
  std::string checkpoint_dir;
  /// Seed forwarded to RunMatcher and the retry jitter.
  uint64_t seed = 1234;
  /// Parallel worker processes for the cell sweep. 1 (the default) keeps
  /// the sequential in-process path; > 1 — or any watchdog/rlimit knob
  /// below — switches to the supervised executor (src/robust/supervisor.h),
  /// which forks one worker per cell, contains crashes/hangs/OOMs, and
  /// respawns failed cells up to retry.max_attempts. Reports are
  /// byte-identical across modes for healthy cells.
  int jobs = 1;
  /// Threads inside each cell for the hot matcher loops (feature-table
  /// rows, forest trees, batch predict); applied via SetIntraJobs before
  /// the sweep, so forked workers inherit it. Composes multiplicatively
  /// with `jobs` — total concurrency is jobs x intra_jobs. Cell results
  /// are byte-identical for any value.
  int intra_jobs = 1;
  /// Wall-clock watchdog deadline per cell attempt (supervised executor
  /// only); the worker is SIGKILLed past it. 0 disables.
  double cell_timeout_s = 0.0;
  /// RLIMIT_AS cap per cell worker in MiB (supervised executor only).
  int cell_max_rss_mb = 0;
  /// RLIMIT_CPU cap per cell worker in seconds (supervised executor only).
  int cell_max_cpu_s = 0;
  /// Emit the live progress line on stderr (rate-limited; sequential and
  /// supervised sweeps alike). The fairem.progress.* gauges and the ETA
  /// histogram update whether or not this is set.
  bool progress = false;
};

/// Renders the paper's unfairness-grid figure for one dataset: every
/// matcher is trained, audited (single or pairwise fairness), and marked
/// into the measure-by-group grid (Figures 6-13 / 17-20). Progress notes go
/// to stderr.
///
/// Fault tolerance: each (matcher, dataset, mode) cell runs under
/// `options.retry`; a cell that still fails is rendered as an error entry
/// under the grid instead of failing the whole report, and — with a
/// checkpoint_dir — every finished cell is persisted so a killed run
/// resumes where it stopped (checkpoint hits are counted in
/// fairem.robust.checkpoint_cells_loaded).
///
/// With `options.jobs` > 1 (or a cell timeout / rlimit set) the sweep runs
/// under the process-isolated supervisor: cells execute in forked workers,
/// crashes and watchdog-killed hangs are contained and respawned, and
/// SIGINT/SIGTERM triggers a cooperative shutdown that reaps every worker
/// and returns Cancelled (callers exit with InterruptExitCode). Cells are
/// applied to the grid in deterministic sweep order regardless of worker
/// completion order, so the rendered report is byte-identical to a
/// sequential run for all healthy cells.
Result<std::string> UnfairnessGridReport(const EMDataset& dataset,
                                         bool pairwise,
                                         const GridRunOptions& options);

/// Back-compat convenience overload: audit options + skip list only.
Result<std::string> UnfairnessGridReport(
    const EMDataset& dataset, bool pairwise,
    const AuditOptions& options = {},
    const std::vector<MatcherKind>& skip = {});

/// One audit grid cell end to end — train `kind`, audit, and convert to the
/// checkpointable representation (the exact bytes the grid sweep persists,
/// so serve-daemon cell responses and grid checkpoints interoperate).
/// Failures propagate as Status for retry wrappers.
Result<GridCellCheckpoint> RunAuditCell(const EMDataset& dataset,
                                        MatcherKind kind, bool pairwise,
                                        const GridRunOptions& options = {});

/// The checkpoint key of one grid cell: "<dataset>.<mode>.<matcher>".
std::string AuditCellKey(const std::string& dataset_name, MatcherKind kind,
                         bool pairwise);

}  // namespace fairem

#endif  // FAIREM_HARNESS_EXPERIMENT_H_
