#include "src/harness/bench_flags.h"

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/robust/failpoint.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace fairem {
namespace {

const char kUsage[] =
    " [--scale S] [--seed N] [--log_level debug|info|warn|error|off]"
    " [--trace_out FILE] [--metrics_out FILE] [--metrics_format json|prom]"
    " [--profile_out FILE] [--profile_hz N] [--profile_mode cpu|wall]"
    " [--failpoints SPEC] [--checkpoint_dir DIR] [--retry_attempts N]"
    " [--jobs N] [--intra_jobs N] [--cell_timeout_s S] [--cell_max_rss_mb M]"
    " [--progress]\n";

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  if (argc > 0) flags.bench_name = Basename(argv[0]);
  auto usage = [&]() {
    std::cerr << "usage: " << (argc > 0 ? argv[0] : "bench") << kUsage;
    std::exit(1);
  };
  for (int i = 1; i < argc; ++i) {
    // Both `--flag value` and `--flag=value` spellings are accepted.
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos && arg[0] == '-') {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline_value = true;
    }
    auto next_string = [&](std::string* out) {
      if (has_inline_value) {
        *out = inline_value;
        return;
      }
      if (i + 1 >= argc) usage();
      *out = argv[++i];
    };
    auto next_value = [&](double* out) {
      std::string text;
      next_string(&text);
      if (!ParseDouble(text, out)) usage();
    };
    if (arg == "--scale") {
      next_value(&flags.scale);
    } else if (arg == "--seed") {
      double v = 0.0;
      next_value(&v);
      flags.seed_offset = static_cast<uint64_t>(v);
    } else if (arg == "--log_level") {
      next_string(&flags.obs.log_level);
    } else if (arg == "--trace_out") {
      next_string(&flags.obs.trace_out);
    } else if (arg == "--metrics_out") {
      next_string(&flags.obs.metrics_out);
    } else if (arg == "--metrics_format") {
      std::string text;
      next_string(&text);
      Result<MetricsFormat> format = ParseMetricsFormat(text);
      if (!format.ok()) usage();
      flags.obs.metrics_format = *format;
    } else if (arg == "--profile_out") {
      next_string(&flags.obs.profile_out);
    } else if (arg == "--profile_hz") {
      double v = 0.0;
      next_value(&v);
      if (v < 1.0) usage();
      flags.obs.profile_hz = static_cast<int>(v);
    } else if (arg == "--profile_mode") {
      next_string(&flags.obs.profile_mode);
      if (!ParseProfileClock(flags.obs.profile_mode).ok()) usage();
    } else if (arg == "--progress") {
      flags.progress = true;
    } else if (arg == "--failpoints") {
      next_string(&flags.failpoints);
    } else if (arg == "--checkpoint_dir") {
      next_string(&flags.checkpoint_dir);
    } else if (arg == "--retry_attempts") {
      double v = 0.0;
      next_value(&v);
      if (v < 1.0) usage();
      flags.retry_attempts = static_cast<int>(v);
    } else if (arg == "--jobs") {
      double v = 0.0;
      next_value(&v);
      if (v < 1.0) usage();
      flags.jobs = static_cast<int>(v);
    } else if (arg == "--intra_jobs") {
      double v = 0.0;
      next_value(&v);
      if (v < 1.0) usage();
      flags.intra_jobs = static_cast<int>(v);
    } else if (arg == "--cell_timeout_s") {
      next_value(&flags.cell_timeout_s);
      if (flags.cell_timeout_s < 0.0) usage();
    } else if (arg == "--cell_max_rss_mb") {
      double v = 0.0;
      next_value(&v);
      if (v < 0.0) usage();
      flags.cell_max_rss_mb = static_cast<int>(v);
    } else {
      std::cerr << "unknown flag '" << arg << "'\nusage: " << argv[0]
                << kUsage;
      std::exit(1);
    }
  }
  SetIntraJobs(flags.intra_jobs);
  if (Status st = ApplyObsOptions(flags.obs); !st.ok()) {
    std::cerr << st << "\nusage: " << argv[0] << kUsage;
    std::exit(1);
  }
  if (!flags.failpoints.empty()) {
    if (Status st = FailpointRegistry::Global().Configure(
            flags.failpoints, 1234 ^ flags.seed_offset);
        !st.ok()) {
      std::cerr << st << "\nusage: " << argv[0] << kUsage;
      std::exit(1);
    }
  }
  if (!flags.obs.trace_out.empty() || !flags.obs.metrics_out.empty() ||
      !flags.obs.profile_out.empty()) {
    FlushObsOutputsAtExit(flags.obs);
  }
  return flags;
}

}  // namespace fairem
