#include "src/harness/bench_flags.h"

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/util/string_util.h"

namespace fairem {

BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](double* out) {
      if (i + 1 >= argc || !ParseDouble(argv[i + 1], out)) {
        std::cerr << "usage: " << argv[0]
                  << " [--scale S] [--seed N]\n";
        std::exit(1);
      }
      ++i;
    };
    if (arg == "--scale") {
      next_value(&flags.scale);
    } else if (arg == "--seed") {
      double v = 0.0;
      next_value(&v);
      flags.seed_offset = static_cast<uint64_t>(v);
    } else {
      std::cerr << "unknown flag '" << arg << "'\nusage: " << argv[0]
                << " [--scale S] [--seed N]\n";
      std::exit(1);
    }
  }
  return flags;
}

}  // namespace fairem
