#ifndef FAIREM_HARNESS_BENCH_FLAGS_H_
#define FAIREM_HARNESS_BENCH_FLAGS_H_

#include <cstdint>
#include <string>

#include "src/obs/obs.h"

namespace fairem {

/// Common command-line flags of the table/figure bench binaries:
///   --scale S        multiply every generator's entity counts (default 1.0)
///   --seed N         shift every generator seed (default 0) — rerun a bench
///                    with several seeds for a quick replication study
///   --log_level L    debug|info|warn|error|off
///   --trace_out F    enable span tracing; write Chrome trace JSON to F
///   --metrics_out F  write a metrics-registry JSON snapshot to F on exit
/// Unknown flags abort with a usage message.
struct BenchFlags {
  double scale = 1.0;
  uint64_t seed_offset = 0;
  ObsOptions obs;
  /// argv[0] basename, e.g. "bench_table5_nofly"; names BENCH_<name>.json.
  std::string bench_name = "bench";
};

/// Parses argv; exits(1) with a usage message on malformed flags. Also
/// applies the observability options (log level, tracing) and registers an
/// atexit flush, so --trace_out/--metrics_out work in every bench binary
/// without per-binary wiring.
BenchFlags ParseBenchFlags(int argc, char** argv);

}  // namespace fairem

#endif  // FAIREM_HARNESS_BENCH_FLAGS_H_
