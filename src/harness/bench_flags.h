#ifndef FAIREM_HARNESS_BENCH_FLAGS_H_
#define FAIREM_HARNESS_BENCH_FLAGS_H_

#include <cstdint>

namespace fairem {

/// Common command-line flags of the table/figure bench binaries:
///   --scale S   multiply every generator's entity counts (default 1.0)
///   --seed N    shift every generator seed (default 0) — rerun a bench
///               with several seeds for a quick replication study
/// Unknown flags abort with a usage message.
struct BenchFlags {
  double scale = 1.0;
  uint64_t seed_offset = 0;
};

/// Parses argv; exits(1) with a usage message on malformed flags.
BenchFlags ParseBenchFlags(int argc, char** argv);

}  // namespace fairem

#endif  // FAIREM_HARNESS_BENCH_FLAGS_H_
