#ifndef FAIREM_HARNESS_BENCH_FLAGS_H_
#define FAIREM_HARNESS_BENCH_FLAGS_H_

#include <cstdint>
#include <string>

#include "src/obs/obs.h"

namespace fairem {

/// Common command-line flags of the table/figure bench binaries:
///   --scale S           multiply every generator's entity counts (default 1)
///   --seed N            shift every generator seed (default 0) — rerun a
///                       bench with several seeds for a replication study
///   --log_level L       debug|info|warn|error|off
///   --trace_out F       enable span tracing; write Chrome trace JSON to F
///   --metrics_out F     write a metrics-registry snapshot to F on exit
///   --metrics_format F  json (default) or prom for --metrics_out
///   --profile_out F     enable the sampling profiler; write folded stacks
///                       (flamegraph.pl / speedscope input) to F on exit
///   --profile_hz N      profiler sample rate (default 97)
///   --profile_mode M    cpu (default) or wall for --profile_out
///   --progress          live grid progress line on stderr (plus the
///                       fairem.progress.* gauges, which update regardless)
///   --failpoints SPEC   arm deterministic fault injection, e.g.
///                       "matcher_fit=error(0.05);grid_cell=crash(1,5)"
///                       (also: FAIREM_FAILPOINTS env)
///   --checkpoint_dir D  persist each grid cell to D and resume from it
///   --retry_attempts N  per-cell attempts for transient failures (default 3)
///   --jobs N            parallel worker processes for grid sweeps; > 1 (or
///                       either knob below) switches to the supervised
///                       process-isolated executor (default 1, sequential)
///   --intra_jobs N      threads inside each process for the hot matcher
///                       loops (feature table rows, forest trees, batch
///                       predict). Composes with --jobs: total concurrency
///                       is jobs x intra_jobs, so size them together
///                       against the core count (default 1, sequential).
///                       Output is byte-identical for any N.
///   --cell_timeout_s S  wall-clock watchdog per grid cell; a hung worker is
///                       SIGKILLed and respawned (default 0 = off)
///   --cell_max_rss_mb M address-space cap per grid-cell worker in MiB
///                       (default 0 = off)
/// Unknown flags abort with a usage message.
struct BenchFlags {
  double scale = 1.0;
  uint64_t seed_offset = 0;
  ObsOptions obs;
  std::string failpoints;
  std::string checkpoint_dir;
  int retry_attempts = 3;
  int jobs = 1;
  int intra_jobs = 1;
  double cell_timeout_s = 0.0;
  int cell_max_rss_mb = 0;
  bool progress = false;
  /// argv[0] basename, e.g. "bench_table5_nofly"; names BENCH_<name>.json.
  std::string bench_name = "bench";
};

/// Parses argv; exits(1) with a usage message on malformed flags. Also
/// applies the observability options (log level, tracing) and registers an
/// atexit flush, so --trace_out/--metrics_out work in every bench binary
/// without per-binary wiring.
BenchFlags ParseBenchFlags(int argc, char** argv);

}  // namespace fairem

#endif  // FAIREM_HARNESS_BENCH_FLAGS_H_
