#include "src/harness/experiment.h"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/report/grid.h"
#include "src/robust/checkpoint.h"
#include "src/robust/failpoint.h"
#include "src/robust/supervisor.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace fairem {

Result<MatcherRun> RunMatcher(const EMDataset& dataset, MatcherKind kind,
                              uint64_t seed) {
  static Counter* runs =
      MetricsRegistry::Global().GetCounter("fairem.harness.matcher_runs");
  static Counter* unsupported = MetricsRegistry::Global().GetCounter(
      "fairem.harness.unsupported_runs");
  static Histogram* fit_hist =
      MetricsRegistry::Global().GetHistogram("fairem.matcher.fit_seconds");
  static Histogram* predict_hist =
      MetricsRegistry::Global().GetHistogram("fairem.matcher.predict_seconds");

  MatcherRun run;
  run.kind = kind;
  run.matcher_name = MatcherKindName(kind);
  std::unique_ptr<Matcher> matcher = CreateMatcher(kind);
  if (matcher == nullptr) {
    return Status::Internal("CreateMatcher returned null");
  }
  if (!matcher->SupportsDataset(dataset)) {
    run.supported = false;
    unsupported->Increment();
    return run;
  }
  runs->Increment();
  Rng rng(seed ^ (static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL));
  // Generic and per-matcher injection sites, so fault-injection runs can
  // target "all fits" (matcher_fit=error(0.05)) or a single system
  // (matcher_fit.Ditto=crash(1)).
  FAIREM_FAILPOINT("matcher_fit");
  FAIREM_FAILPOINT("matcher_fit." + run.matcher_name);
  {
    // fit_seconds comes from the span's own monotonic clock, so the
    // harness-reported number and the trace event can never disagree.
    Span span("fairem.matcher.fit", &run.fit_seconds);
    span.AddArg("matcher", run.matcher_name);
    span.AddArg("dataset", dataset.name);
    FAIREM_RETURN_NOT_OK(matcher->Fit(dataset, &rng));
  }
  fit_hist->Observe(run.fit_seconds);
  FAIREM_FAILPOINT("matcher_predict");
  FAIREM_FAILPOINT("matcher_predict." + run.matcher_name);
  {
    Span span("fairem.matcher.predict", &run.predict_seconds);
    span.AddArg("matcher", run.matcher_name);
    span.AddArg("dataset", dataset.name);
    span.AddArg("pairs", std::to_string(dataset.test.size()));
    FAIREM_ASSIGN_OR_RETURN(run.test_scores,
                            matcher->PredictScores(dataset, dataset.test));
  }
  predict_hist->Observe(run.predict_seconds);
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  run.counts = OverallCounts(outcomes);
  run.accuracy = Accuracy(run.counts).value_or(0.0);
  run.f1 = F1Score(run.counts).value_or(0.0);
  FAIREM_LOG(DEBUG) << "matcher run complete"
                    << LogKv("matcher", run.matcher_name)
                    << LogKv("dataset", dataset.name)
                    << LogKv("fit_s", FormatDouble(run.fit_seconds, 4))
                    << LogKv("predict_s", FormatDouble(run.predict_seconds, 4))
                    << LogKv("f1", FormatDouble(run.f1, 3));
  return run;
}

Result<FairnessAuditor> MakeAuditor(const EMDataset& dataset) {
  SensitiveAttr attr;
  attr.name = dataset.sensitive_attr;
  attr.kind = dataset.sensitive_kind;
  attr.setwise_separator = dataset.setwise_separator;
  return FairnessAuditor::Make(dataset.table_a, dataset.table_b, attr);
}

Result<AuditReport> AuditRunSingle(const EMDataset& dataset,
                                   const MatcherRun& run,
                                   const AuditOptions& options) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  return auditor.AuditSingle(outcomes, options);
}

Result<AuditReport> AuditRunPairwise(const EMDataset& dataset,
                                     const MatcherRun& run,
                                     const AuditOptions& options) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  return auditor.AuditPairwise(outcomes, options);
}

Result<std::vector<GroupRates>> GroupBreakdown(const EMDataset& dataset,
                                               const MatcherRun& run) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  std::vector<GroupRates> breakdown;
  for (const auto& group : auditor.groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                            auditor.membership().encoding().Encode({group}));
    GroupRates rates;
    rates.group = group;
    rates.counts = SingleGroupCounts(auditor.membership(), outcomes, mask);
    breakdown.push_back(std::move(rates));
  }
  return breakdown;
}


namespace {

/// A checkpointed cell is only as good as its measure names; parse them all
/// before accepting it, so a corrupt checkpoint falls back to a live re-run.
Status ValidateCellMeasures(const GridCellCheckpoint& cell) {
  for (const auto& mark : cell.marks) {
    FAIREM_ASSIGN_OR_RETURN(FairnessMeasure m,
                            ParseFairnessMeasure(mark.measure));
    (void)m;
  }
  return Status::OK();
}

/// Replays a (fresh or checkpointed) cell into the grid. Validates before
/// mutating so a corrupt checkpoint can fall back to a live re-run without
/// leaving half a cell behind.
Status ApplyCellToGrid(const GridCellCheckpoint& cell, UnfairnessGrid* grid) {
  std::vector<FairnessMeasure> measures;
  measures.reserve(cell.marks.size());
  for (const auto& mark : cell.marks) {
    FAIREM_ASSIGN_OR_RETURN(FairnessMeasure m,
                            ParseFairnessMeasure(mark.measure));
    measures.push_back(m);
  }
  if (cell.error) {
    grid->AddError(cell.matcher, cell.status);
    return Status::OK();
  }
  for (size_t i = 0; i < cell.marks.size(); ++i) {
    grid->MarkCell(cell.marker, cell.marks[i].group, measures[i],
                   cell.marks[i].unfair);
  }
  return Status::OK();
}

/// One grid cell end to end: train + audit, converted to the checkpointable
/// representation. Failures propagate as Status for the retry wrapper.
Result<GridCellCheckpoint> RunGridCell(const EMDataset& dataset,
                                       MatcherKind kind, bool pairwise,
                                       const GridRunOptions& options) {
  FAIREM_FAILPOINT("grid_cell");
  GridCellCheckpoint cell;
  cell.matcher = MatcherKindName(kind);
  FAIREM_ASSIGN_OR_RETURN(MatcherRun run,
                          RunMatcher(dataset, kind, options.seed));
  cell.marker = MatcherMarker(run.matcher_name);
  cell.supported = run.supported;
  if (!run.supported) return cell;
  FAIREM_ASSIGN_OR_RETURN(
      AuditReport report,
      pairwise ? AuditRunPairwise(dataset, run, options.audit)
               : AuditRunSingle(dataset, run, options.audit));
  cell.marks.reserve(report.entries.size());
  for (const auto& entry : report.entries) {
    cell.marks.push_back({entry.group_label, FairnessMeasureName(entry.measure),
                          entry.unfair});
  }
  FAIREM_LOG(INFO) << "audited matcher" << LogKv("matcher", run.matcher_name)
                   << LogKv("dataset", dataset.name)
                   << LogKv("mode", pairwise ? "pairwise" : "single")
                   << LogKv("unfair_cells", report.UnfairEntries().size());
  return cell;
}

/// One (matcher, mode) cell of the sweep, resolved from a checkpoint, a
/// live in-process run, or a supervised worker.
struct CellSlot {
  MatcherKind kind = MatcherKind::kDT;
  std::string key;
  bool resolved = false;
  GridCellCheckpoint cell;
};

/// jobs == 1 with no watchdog/rlimit knobs keeps the sequential in-process
/// path; anything else needs process isolation.
bool UseSupervisedExecutor(const GridRunOptions& options) {
  return options.jobs > 1 || options.cell_timeout_s > 0.0 ||
         options.cell_max_rss_mb > 0 || options.cell_max_cpu_s > 0;
}

GridCellCheckpoint MakeErrorCell(MatcherKind kind, const Status& status) {
  GridCellCheckpoint cell;
  cell.matcher = MatcherKindName(kind);
  cell.marker = MatcherMarker(cell.matcher);
  cell.error = true;
  cell.status = status.ToString();
  return cell;
}

}  // namespace

Result<GridCellCheckpoint> RunAuditCell(const EMDataset& dataset,
                                        MatcherKind kind, bool pairwise,
                                        const GridRunOptions& options) {
  return RunGridCell(dataset, kind, pairwise, options);
}

std::string AuditCellKey(const std::string& dataset_name, MatcherKind kind,
                         bool pairwise) {
  return dataset_name + "." + (pairwise ? "pairwise" : "single") + "." +
         MatcherKindName(kind);
}

Result<std::string> UnfairnessGridReport(const EMDataset& dataset,
                                         bool pairwise,
                                         const GridRunOptions& options) {
  static Counter* checkpoint_hits = MetricsRegistry::Global().GetCounter(
      "fairem.robust.checkpoint_cells_loaded");
  static Counter* checkpoint_writes = MetricsRegistry::Global().GetCounter(
      "fairem.robust.checkpoint_cells_saved");
  static Counter* error_cells =
      MetricsRegistry::Global().GetCounter("fairem.robust.grid_error_cells");
  Span grid_span("fairem.harness.unfairness_grid");
  grid_span.AddArg("dataset", dataset.name);
  grid_span.AddArg("mode", pairwise ? "pairwise" : "single");
  // Applied before any forking so supervised workers inherit the setting;
  // they rebuild their own pool lazily (the parent's is abandoned at fork).
  SetIntraJobs(options.intra_jobs);
  const char* mode = pairwise ? "pairwise" : "single";
  CheckpointStore store(options.checkpoint_dir);
  // SIGINT/SIGTERM now request a cooperative stop: workers are reaped,
  // completed state stays on disk, and the report returns Cancelled.
  ShutdownGuard shutdown_guard;

  std::vector<CellSlot> slots;
  for (MatcherKind kind : AllMatcherKinds()) {
    if (std::find(options.skip.begin(), options.skip.end(), kind) !=
        options.skip.end()) {
      continue;
    }
    CellSlot slot;
    slot.kind = kind;
    slot.key = dataset.name + "." + mode + "." + MatcherKindName(kind);
    slots.push_back(std::move(slot));
  }

  // Phase 1: replay whatever a previous run already persisted.
  if (store.enabled()) {
    for (CellSlot& slot : slots) {
      Result<std::string> payload = store.Load(slot.key);
      if (payload.ok()) {
        Result<GridCellCheckpoint> cell = GridCellFromJson(*payload);
        if (cell.ok() && ValidateCellMeasures(*cell).ok()) {
          slot.cell = std::move(*cell);
          slot.resolved = true;
          checkpoint_hits->Increment();
          if (slot.cell.error) error_cells->Increment();
          FAIREM_LOG(INFO) << "grid cell loaded from checkpoint"
                           << LogKv("key", slot.key);
          continue;
        }
        FAIREM_LOG(WARN)
            << "corrupt checkpoint, re-running cell" << LogKv("key", slot.key)
            << LogKv("status", cell.ok() ? "bad measure name"
                                         : cell.status().ToString());
      } else if (!payload.status().IsNotFound()) {
        FAIREM_LOG(WARN) << "checkpoint load failed, re-running cell"
                         << LogKv("key", slot.key)
                         << LogKv("status", payload.status().ToString());
      }
    }
  }

  // Live progress: gauges/ETA always, stderr line only with
  // options.progress. Checkpoint-replayed cells count as done up front.
  ProgressReporter reporter(slots.size(), options.jobs,
                            /*min_interval_seconds=*/0.5,
                            /*emit_stderr=*/options.progress);
  size_t progress_done = 0;
  size_t progress_failed = 0;
  for (const CellSlot& slot : slots) {
    if (slot.resolved) {
      ++progress_done;
      if (slot.cell.error) ++progress_failed;
    }
  }
  auto progress_base = [&]() {
    ProgressSnapshot snap;
    snap.total = slots.size();
    snap.done = progress_done;
    snap.failed = progress_failed;
    return snap;
  };
  reporter.Update(progress_base());

  // Phase 2: run the remaining cells — forked workers under the supervisor,
  // or in-process with RetryCall.
  if (UseSupervisedExecutor(options)) {
    std::vector<size_t> todo;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].resolved) todo.push_back(i);
    }
    std::vector<Supervisor::Task> tasks;
    tasks.reserve(todo.size());
    for (size_t i : todo) {
      Supervisor::Task task;
      task.key = slots[i].key;
      task.run = [&, i]() -> Result<std::string> {
        FAIREM_ASSIGN_OR_RETURN(
            GridCellCheckpoint cell,
            RunGridCell(dataset, slots[i].kind, pairwise, options));
        std::string json = GridCellToJson(cell);
        // The worker persists its own cell (the supervisor also gets the
        // payload over the pipe, so a broken store degrades resumability
        // only).
        if (store.enabled()) {
          if (Status st = store.Save(slots[i].key, json); !st.ok()) {
            FAIREM_LOG(WARN) << "checkpoint save failed in worker"
                             << LogKv("key", slots[i].key)
                             << LogKv("status", st.ToString());
          }
        }
        return json;
      };
      tasks.push_back(std::move(task));
    }
    SupervisorOptions sup;
    sup.jobs = options.jobs;
    sup.cell_timeout_s = options.cell_timeout_s;
    sup.cell_max_rss_mb = options.cell_max_rss_mb;
    sup.cell_max_cpu_s = options.cell_max_cpu_s;
    sup.max_attempts = options.retry.max_attempts;
    // The supervisor reports its own task universe; shift it by the cells
    // already replayed from checkpoints so the line reads against the full
    // grid.
    const size_t base_done = progress_done;
    const size_t base_failed = progress_failed;
    sup.on_progress = [&](const ProgressSnapshot& snap) {
      ProgressSnapshot adjusted = snap;
      adjusted.total = slots.size();
      adjusted.done += base_done;
      adjusted.failed += base_failed;
      reporter.Update(adjusted);
    };
    Supervisor supervisor(sup);
    FAIREM_ASSIGN_OR_RETURN(std::vector<TaskOutcome> outcomes,
                            supervisor.Run(tasks));
    for (size_t t = 0; t < todo.size(); ++t) {
      CellSlot& slot = slots[todo[t]];
      const TaskOutcome& outcome = outcomes[t];
      if (outcome.kind == TaskOutcome::Kind::kOk) {
        Result<GridCellCheckpoint> cell = GridCellFromJson(outcome.payload);
        if (cell.ok() && ValidateCellMeasures(*cell).ok()) {
          slot.cell = std::move(*cell);
          slot.resolved = true;
          if (store.enabled() &&
              std::filesystem::exists(store.PathFor(slot.key))) {
            checkpoint_writes->Increment();
          }
          continue;
        }
        slot.cell = MakeErrorCell(
            slot.kind, Status::Internal("worker shipped an unparseable cell: " +
                                        cell.status().ToString()));
      } else {
        // Graceful degradation, as in sequential mode: the crashed / hung /
        // failed cell becomes an error entry instead of killing the sweep.
        slot.cell = MakeErrorCell(slot.kind, outcome.status);
      }
      slot.resolved = true;
      error_cells->Increment();
      FAIREM_LOG(ERROR) << "grid cell unavailable after supervised attempts"
                        << LogKv("key", slot.key)
                        << LogKv("outcome", TaskOutcomeKindName(outcome.kind))
                        << LogKv("attempts", outcome.attempts)
                        << LogKv("status", slot.cell.status);
      if (store.enabled()) {
        if (Status st = store.Save(slot.key, GridCellToJson(slot.cell));
            !st.ok()) {
          FAIREM_LOG(WARN) << "checkpoint save failed" << LogKv("key", slot.key)
                           << LogKv("status", st.ToString());
        } else {
          checkpoint_writes->Increment();
        }
      }
    }
  } else {
    for (CellSlot& slot : slots) {
      if (slot.resolved) continue;
      if (ShutdownGuard::requested()) {
        return Status::Cancelled(
            "grid run interrupted by signal " +
            std::to_string(ShutdownGuard::signal_number()));
      }
      double cell_seconds = 0.0;
      Result<GridCellCheckpoint> cell = [&]() {
        ScopedTimer timer(&cell_seconds);
        return RetryCall(options.retry,
                         [&]() {
                           return RunGridCell(dataset, slot.kind, pairwise,
                                              options);
                         },
                         options.seed ^ (static_cast<uint64_t>(slot.kind) + 1) *
                                            0x9e3779b97f4a7c15ULL);
      }();
      if (cell.ok()) {
        slot.cell = std::move(*cell);
      } else {
        // Graceful degradation: the cell is reported as an error entry (the
        // grid's "-") instead of aborting the whole report.
        slot.cell = MakeErrorCell(slot.kind, cell.status());
        error_cells->Increment();
        FAIREM_LOG(ERROR) << "grid cell failed after retries"
                          << LogKv("key", slot.key)
                          << LogKv("status", slot.cell.status);
      }
      slot.resolved = true;
      ++progress_done;
      if (slot.cell.error) ++progress_failed;
      {
        ProgressSnapshot snap = progress_base();
        snap.last_cell_seconds = cell_seconds;
        reporter.Update(snap);
      }
      if (store.enabled()) {
        if (Status st = store.Save(slot.key, GridCellToJson(slot.cell));
            !st.ok()) {
          // A broken checkpoint dir degrades resumability, not the report.
          FAIREM_LOG(WARN) << "checkpoint save failed" << LogKv("key", slot.key)
                           << LogKv("status", st.ToString());
        } else {
          checkpoint_writes->Increment();
        }
      }
    }
  }

  // Final (forced) progress line: every slot is resolved by now.
  progress_done = 0;
  progress_failed = 0;
  for (const CellSlot& slot : slots) {
    ++progress_done;
    if (slot.cell.error) ++progress_failed;
  }
  reporter.Update(progress_base(), /*force=*/true);

  // Phase 3: apply in sweep order — column order is first-seen, so this is
  // what makes parallel and sequential reports byte-identical.
  UnfairnessGrid grid;
  for (const CellSlot& slot : slots) {
    FAIREM_RETURN_NOT_OK(ApplyCellToGrid(slot.cell, &grid));
  }
  return grid.Render();
}

Result<std::string> UnfairnessGridReport(const EMDataset& dataset,
                                         bool pairwise,
                                         const AuditOptions& options,
                                         const std::vector<MatcherKind>& skip) {
  GridRunOptions grid_options;
  grid_options.audit = options;
  grid_options.skip = skip;
  return UnfairnessGridReport(dataset, pairwise, grid_options);
}

}  // namespace fairem
