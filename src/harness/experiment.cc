#include "src/harness/experiment.h"

#include <algorithm>
#include <memory>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/report/grid.h"
#include "src/util/string_util.h"

namespace fairem {

Result<MatcherRun> RunMatcher(const EMDataset& dataset, MatcherKind kind,
                              uint64_t seed) {
  static Counter* runs =
      MetricsRegistry::Global().GetCounter("fairem.harness.matcher_runs");
  static Counter* unsupported = MetricsRegistry::Global().GetCounter(
      "fairem.harness.unsupported_runs");
  static Histogram* fit_hist =
      MetricsRegistry::Global().GetHistogram("fairem.matcher.fit_seconds");
  static Histogram* predict_hist =
      MetricsRegistry::Global().GetHistogram("fairem.matcher.predict_seconds");

  MatcherRun run;
  run.kind = kind;
  run.matcher_name = MatcherKindName(kind);
  std::unique_ptr<Matcher> matcher = CreateMatcher(kind);
  if (matcher == nullptr) {
    return Status::Internal("CreateMatcher returned null");
  }
  if (!matcher->SupportsDataset(dataset)) {
    run.supported = false;
    unsupported->Increment();
    return run;
  }
  runs->Increment();
  Rng rng(seed ^ (static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL));
  {
    // fit_seconds comes from the span's own monotonic clock, so the
    // harness-reported number and the trace event can never disagree.
    Span span("fairem.matcher.fit", &run.fit_seconds);
    span.AddArg("matcher", run.matcher_name);
    span.AddArg("dataset", dataset.name);
    FAIREM_RETURN_NOT_OK(matcher->Fit(dataset, &rng));
  }
  fit_hist->Observe(run.fit_seconds);
  {
    Span span("fairem.matcher.predict", &run.predict_seconds);
    span.AddArg("matcher", run.matcher_name);
    span.AddArg("dataset", dataset.name);
    span.AddArg("pairs", std::to_string(dataset.test.size()));
    FAIREM_ASSIGN_OR_RETURN(run.test_scores,
                            matcher->PredictScores(dataset, dataset.test));
  }
  predict_hist->Observe(run.predict_seconds);
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  run.counts = OverallCounts(outcomes);
  run.accuracy = Accuracy(run.counts).value_or(0.0);
  run.f1 = F1Score(run.counts).value_or(0.0);
  FAIREM_LOG(DEBUG) << "matcher run complete"
                    << LogKv("matcher", run.matcher_name)
                    << LogKv("dataset", dataset.name)
                    << LogKv("fit_s", FormatDouble(run.fit_seconds, 4))
                    << LogKv("predict_s", FormatDouble(run.predict_seconds, 4))
                    << LogKv("f1", FormatDouble(run.f1, 3));
  return run;
}

Result<FairnessAuditor> MakeAuditor(const EMDataset& dataset) {
  SensitiveAttr attr;
  attr.name = dataset.sensitive_attr;
  attr.kind = dataset.sensitive_kind;
  attr.setwise_separator = dataset.setwise_separator;
  return FairnessAuditor::Make(dataset.table_a, dataset.table_b, attr);
}

Result<AuditReport> AuditRunSingle(const EMDataset& dataset,
                                   const MatcherRun& run,
                                   const AuditOptions& options) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  return auditor.AuditSingle(outcomes, options);
}

Result<AuditReport> AuditRunPairwise(const EMDataset& dataset,
                                     const MatcherRun& run,
                                     const AuditOptions& options) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  return auditor.AuditPairwise(outcomes, options);
}

Result<std::vector<GroupRates>> GroupBreakdown(const EMDataset& dataset,
                                               const MatcherRun& run) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  std::vector<GroupRates> breakdown;
  for (const auto& group : auditor.groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                            auditor.membership().encoding().Encode({group}));
    GroupRates rates;
    rates.group = group;
    rates.counts = SingleGroupCounts(auditor.membership(), outcomes, mask);
    breakdown.push_back(std::move(rates));
  }
  return breakdown;
}


Result<std::string> UnfairnessGridReport(const EMDataset& dataset,
                                         bool pairwise,
                                         const AuditOptions& options,
                                         const std::vector<MatcherKind>& skip) {
  Span grid_span("fairem.harness.unfairness_grid");
  grid_span.AddArg("dataset", dataset.name);
  grid_span.AddArg("mode", pairwise ? "pairwise" : "single");
  UnfairnessGrid grid;
  for (MatcherKind kind : AllMatcherKinds()) {
    if (std::find(skip.begin(), skip.end(), kind) != skip.end()) continue;
    FAIREM_ASSIGN_OR_RETURN(MatcherRun run, RunMatcher(dataset, kind));
    if (!run.supported) continue;
    FAIREM_ASSIGN_OR_RETURN(
        AuditReport report,
        pairwise ? AuditRunPairwise(dataset, run, options)
                 : AuditRunSingle(dataset, run, options));
    grid.Mark(MatcherMarker(run.matcher_name), report);
    FAIREM_LOG(INFO) << "audited matcher" << LogKv("matcher", run.matcher_name)
                     << LogKv("dataset", dataset.name)
                     << LogKv("mode", pairwise ? "pairwise" : "single")
                     << LogKv("unfair_cells", report.UnfairEntries().size());
  }
  return grid.Render();
}

}  // namespace fairem
