#include "src/harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>

#include "src/report/grid.h"

namespace fairem {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<MatcherRun> RunMatcher(const EMDataset& dataset, MatcherKind kind,
                              uint64_t seed) {
  MatcherRun run;
  run.kind = kind;
  run.matcher_name = MatcherKindName(kind);
  std::unique_ptr<Matcher> matcher = CreateMatcher(kind);
  if (matcher == nullptr) {
    return Status::Internal("CreateMatcher returned null");
  }
  if (!matcher->SupportsDataset(dataset)) {
    run.supported = false;
    return run;
  }
  Rng rng(seed ^ (static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL));
  auto fit_start = std::chrono::steady_clock::now();
  FAIREM_RETURN_NOT_OK(matcher->Fit(dataset, &rng));
  run.fit_seconds = SecondsSince(fit_start);
  auto predict_start = std::chrono::steady_clock::now();
  FAIREM_ASSIGN_OR_RETURN(run.test_scores,
                          matcher->PredictScores(dataset, dataset.test));
  run.predict_seconds = SecondsSince(predict_start);
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  run.counts = OverallCounts(outcomes);
  run.accuracy = Accuracy(run.counts).value_or(0.0);
  run.f1 = F1Score(run.counts).value_or(0.0);
  return run;
}

Result<FairnessAuditor> MakeAuditor(const EMDataset& dataset) {
  SensitiveAttr attr;
  attr.name = dataset.sensitive_attr;
  attr.kind = dataset.sensitive_kind;
  attr.setwise_separator = dataset.setwise_separator;
  return FairnessAuditor::Make(dataset.table_a, dataset.table_b, attr);
}

Result<AuditReport> AuditRunSingle(const EMDataset& dataset,
                                   const MatcherRun& run,
                                   const AuditOptions& options) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  return auditor.AuditSingle(outcomes, options);
}

Result<AuditReport> AuditRunPairwise(const EMDataset& dataset,
                                     const MatcherRun& run,
                                     const AuditOptions& options) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  return auditor.AuditPairwise(outcomes, options);
}

Result<std::vector<GroupRates>> GroupBreakdown(const EMDataset& dataset,
                                               const MatcherRun& run) {
  FAIREM_ASSIGN_OR_RETURN(FairnessAuditor auditor, MakeAuditor(dataset));
  FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                          MakeOutcomes(dataset.test, run.test_scores,
                                       dataset.default_threshold));
  std::vector<GroupRates> breakdown;
  for (const auto& group : auditor.groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                            auditor.membership().encoding().Encode({group}));
    GroupRates rates;
    rates.group = group;
    rates.counts = SingleGroupCounts(auditor.membership(), outcomes, mask);
    breakdown.push_back(std::move(rates));
  }
  return breakdown;
}


Result<std::string> UnfairnessGridReport(const EMDataset& dataset,
                                         bool pairwise,
                                         const AuditOptions& options,
                                         const std::vector<MatcherKind>& skip) {
  UnfairnessGrid grid;
  for (MatcherKind kind : AllMatcherKinds()) {
    if (std::find(skip.begin(), skip.end(), kind) != skip.end()) continue;
    FAIREM_ASSIGN_OR_RETURN(MatcherRun run, RunMatcher(dataset, kind));
    if (!run.supported) continue;
    FAIREM_ASSIGN_OR_RETURN(
        AuditReport report,
        pairwise ? AuditRunPairwise(dataset, run, options)
                 : AuditRunSingle(dataset, run, options));
    grid.Mark(MatcherMarker(run.matcher_name), report);
    std::cerr << "audited " << run.matcher_name << " on " << dataset.name
              << " (" << (pairwise ? "pairwise" : "single") << ")\n";
  }
  return grid.Render();
}

}  // namespace fairem

