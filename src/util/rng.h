#ifndef FAIREM_UTIL_RNG_H_
#define FAIREM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairem {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library takes an explicit
/// seed so that datasets, splits, and model training are fully reproducible
/// across runs and platforms.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[static_cast<size_t>(NextBounded(items.size()))];
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (k is clamped to n). Result order is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks a child generator whose stream is decorrelated from this one;
  /// useful for giving sub-components independent deterministic streams.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fairem

#endif  // FAIREM_UTIL_RNG_H_
