#ifndef FAIREM_UTIL_STRING_UTIL_H_
#define FAIREM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairem {

/// Converts ASCII letters to lower case (non-ASCII bytes pass through).
std::string ToLowerAscii(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` is well-formed UTF-8 (rejects overlong encodings, surrogate
/// code points, and values beyond U+10FFFF). ASCII is always valid.
bool IsValidUtf8(std::string_view s);

/// True if `s` parses entirely as a finite double; on success stores it in
/// `*out` (which may be null to just test).
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace fairem

#endif  // FAIREM_UTIL_STRING_UTIL_H_
