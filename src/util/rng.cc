#include "src/util/rng.h"

#include <cmath>

#include "src/util/logging.h"

namespace fairem {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FAIREM_CHECK(bound > 0, "NextBounded requires bound > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  FAIREM_CHECK(lo <= hi, "NextInt requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: the first k positions are a uniform sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace fairem
