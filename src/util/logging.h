#ifndef FAIREM_UTIL_LOGGING_H_
#define FAIREM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <string>

namespace fairem {
namespace internal_logging {

/// Prints a fatal diagnostic and aborts. Used by FAIREM_CHECK; invariant
/// violations inside the library are programming errors, not recoverable
/// conditions, so they terminate rather than propagate.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::cerr << "FAIREM_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) std::cerr << " — " << message;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace fairem

/// Aborts with a diagnostic when `cond` is false. Second argument is an
/// optional std::string message.
#define FAIREM_CHECK(cond, ...)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fairem::internal_logging::CheckFailed(__FILE__, __LINE__, #cond, \
                                              std::string{__VA_ARGS__}); \
    }                                                                    \
  } while (false)

#endif  // FAIREM_UTIL_LOGGING_H_
