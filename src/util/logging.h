#ifndef FAIREM_UTIL_LOGGING_H_
#define FAIREM_UTIL_LOGGING_H_

#include <string>

namespace fairem {
namespace internal_logging {

/// Prints a fatal diagnostic and aborts. Used by FAIREM_CHECK; invariant
/// violations inside the library are programming errors, not recoverable
/// conditions, so they terminate rather than propagate. Defined in
/// src/obs/log.cc: the diagnostic is routed through the structured log sink
/// (unfiltered) so a crashing batch run leaves its last words alongside the
/// rest of its log stream.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace internal_logging
}  // namespace fairem

/// Aborts with a diagnostic when `cond` is false. Second argument is an
/// optional std::string message.
#define FAIREM_CHECK(cond, ...)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fairem::internal_logging::CheckFailed(__FILE__, __LINE__, #cond, \
                                              std::string{__VA_ARGS__}); \
    }                                                                    \
  } while (false)

#endif  // FAIREM_UTIL_LOGGING_H_
