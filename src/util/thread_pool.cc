#include "src/util/thread_pool.h"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/util/logging.h"

// The global pool is leaked by design (see AbandonPoolInForkedChild);
// tell LeakSanitizer so, instead of failing the ASan suite on it.
#if defined(__SANITIZE_ADDRESS__)
#define FAIREM_POOL_HAS_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FAIREM_POOL_HAS_LSAN 1
#endif
#endif
#ifdef FAIREM_POOL_HAS_LSAN
#include <sanitizer/lsan_interface.h>
#endif

namespace fairem {
namespace {

using Clock = std::chrono::steady_clock;

/// Set while the current thread runs a ParallelFor body (worker or
/// participating caller); nested ParallelFor calls check it to fall back
/// to inline execution instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

Counter* PoolTasksCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("fairem.pool.tasks");
  return c;
}

Counter* PoolJobsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.pool.parallel_fors");
  return c;
}

Counter* PoolNestedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.pool.nested_inline_calls");
  return c;
}

Histogram* QueueWaitHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "fairem.pool.queue_wait_seconds",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  return h;
}

}  // namespace

struct ThreadPool::Job {
  size_t n = 0;
  size_t grain = 1;
  const std::function<void(size_t, size_t)>* body = nullptr;
  Clock::time_point submit_time;

  std::atomic<size_t> next{0};     // next chunk start index
  std::atomic<int> in_flight{0};   // threads currently inside RunChunks

  // First error by chunk order, not by wall-clock order, so the exception
  // the caller sees does not depend on thread scheduling.
  std::mutex err_mu;
  std::exception_ptr first_error;
  size_t first_error_chunk = 0;
  bool has_error = false;
};

ThreadPool::ThreadPool(int num_threads) {
  int spawn = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  MetricsRegistry::Global()
      .GetGauge("fairem.pool.workers")
      ->Set(static_cast<double>(spawn));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunInline(size_t n,
                           const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  try {
    body(0, n);
  } catch (...) {
    t_in_parallel_region = was_in_region;
    throw;
  }
  t_in_parallel_region = was_in_region;
}

void ThreadPool::RunChunks(Job* job) {
  bool first_chunk = true;
  for (;;) {
    size_t begin = job->next.fetch_add(job->grain, std::memory_order_relaxed);
    if (begin >= job->n) break;
    size_t end = std::min(begin + job->grain, job->n);
    if (first_chunk) {
      double wait = std::chrono::duration<double>(Clock::now() -
                                                  job->submit_time)
                        .count();
      QueueWaitHistogram()->Observe(wait);
      first_chunk = false;
    }
    PoolTasksCounter()->Increment();
    try {
      (*job->body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->err_mu);
      if (!job->has_error || begin < job->first_error_chunk) {
        job->first_error = std::current_exception();
        job->first_error_chunk = begin;
        job->has_error = true;
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  // Stack bounds for the sampling profiler's frame-pointer walk — without
  // them a SIGPROF landing on a pool thread records only the leaf PC.
  Profiler::RegisterCurrentThread();
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&]() {
        return shutdown_ || (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (shutdown_) return;
      job = job_;
      seen_generation = job_generation_;
      job->in_flight.fetch_add(1, std::memory_order_acq_rel);
    }
    t_in_parallel_region = true;
    RunChunks(job);
    t_in_parallel_region = false;
    bool last = job->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1;
    if (last) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  PoolJobsCounter()->Increment();
  // Sequential fallback: an effectively single-threaded pool, a nested
  // call from inside a parallel region, or a range too small to split.
  size_t threads = workers_.size() + 1;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (threads * 4));
  }
  if (t_in_parallel_region) {
    PoolNestedCounter()->Increment();
    RunInline(n, body);
    return;
  }
  if (workers_.empty() || n <= grain) {
    RunInline(n, body);
    return;
  }

  Job job;
  job.n = n;
  job.grain = grain;
  job.body = &body;
  job.submit_time = Clock::now();

  // One job at a time: concurrent external submitters queue up here (the
  // second submitter's chunks run after the first job drains).
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_generation_;
  }
  work_cv_.notify_all();

  // The caller participates instead of blocking idle.
  t_in_parallel_region = true;
  RunChunks(&job);
  t_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // late-waking workers must not pick the dead job up
    done_cv_.wait(lock, [&]() {
      return job.in_flight.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.has_error) std::rethrow_exception(job.first_error);
}

namespace {

std::atomic<int> g_intra_jobs{1};

// The global pool is intentionally leaked: worker threads idle on the
// condition variable until process exit, and never joining at static
// destruction time sidesteps shutdown-order hazards with the metrics
// registry. The pointer is atomic so a forked child can abandon the
// parent's pool (whose threads do not exist in the child) and lazily
// rebuild its own.
std::atomic<ThreadPool*> g_pool{nullptr};
std::mutex g_pool_mu;
std::atomic<int> g_pool_size{0};

void AbandonPoolInForkedChild() {
  // Deliberately leak the old object: its mutexes may be held by threads
  // that vanished in the fork, so destroying (or touching) it could
  // deadlock. A fresh pool is built on next use.
  g_pool.store(nullptr, std::memory_order_release);
  g_pool_size.store(0, std::memory_order_release);
  // g_pool_mu may have been held by a vanished thread only if the fork
  // happened concurrently with pool construction; the supervisor forks
  // from its single-threaded poll loop, so the lock is free here. Leave
  // it as-is rather than re-initializing non-trivially.
}

void RegisterForkHandlerOnce() {
  static bool registered = []() {
    pthread_atfork(nullptr, nullptr, &AbandonPoolInForkedChild);
    return true;
  }();
  (void)registered;
}

}  // namespace

void SetIntraJobs(int n) {
  g_intra_jobs.store(std::max(1, n), std::memory_order_relaxed);
}

int IntraJobs() { return g_intra_jobs.load(std::memory_order_relaxed); }

ThreadPool& GlobalThreadPool() {
  RegisterForkHandlerOnce();
  int want = IntraJobs();
  ThreadPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool != nullptr && g_pool_size.load(std::memory_order_acquire) == want) {
    return *pool;
  }
  std::lock_guard<std::mutex> lock(g_pool_mu);
  pool = g_pool.load(std::memory_order_acquire);
  if (pool == nullptr || g_pool_size.load(std::memory_order_acquire) != want) {
    // Resizing leaks the previous pool's threads until exit; intra_jobs
    // changes once per process in practice (flag parse), so this is a
    // startup path, not a steady-state one.
    ThreadPool* fresh = new ThreadPool(want);
#ifdef FAIREM_POOL_HAS_LSAN
    __lsan_ignore_object(fresh);
#endif
    g_pool.store(fresh, std::memory_order_release);
    g_pool_size.store(want, std::memory_order_release);
    pool = fresh;
  }
  return *pool;
}

Status ParallelForChunks(size_t n, size_t grain,
                         const std::function<Status(size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  // First failing chunk by index order, so the returned Status is the same
  // whatever the schedule or worker count.
  std::mutex err_mu;
  bool has_error = false;
  size_t err_chunk = 0;
  Status first_error = Status::OK();
  GlobalThreadPool().ParallelFor(n, grain, [&](size_t begin, size_t end) {
    Status st = body(begin, end);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!has_error || begin < err_chunk) {
        first_error = std::move(st);
        err_chunk = begin;
        has_error = true;
      }
    }
  });
  return first_error;
}

bool InParallelRegion() { return t_in_parallel_region; }

}  // namespace fairem
