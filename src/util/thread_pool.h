#ifndef FAIREM_UTIL_THREAD_POOL_H_
#define FAIREM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// A reusable fixed-size worker pool built for one job shape: deterministic
/// chunked parallel-for over an index range. Design invariants:
///
///  * Stable output order regardless of worker count: the body receives
///    disjoint [begin, end) chunks of [0, n) and writes results by index;
///    which thread runs which chunk never affects the bytes produced.
///  * Graceful sequential fallback: a pool with fewer than 2 threads (or
///    n below one grain) runs the body inline on the caller — the same
///    code path a `--intra_jobs 1` run takes, so parallel and sequential
///    executions are byte-identical by construction.
///  * Nested-use rejection: a ParallelFor issued from inside a pool worker
///    (or from a body already running under ParallelFor) does not re-enter
///    the pool — it runs inline, counted in
///    `fairem.pool.nested_inline_calls`. This makes accidental nesting
///    (e.g. a parallel feature build inside a parallel predict) safe
///    instead of a deadlock.
///  * The caller participates: submitting ParallelFor runs chunks on the
///    calling thread too, so a pool of `k` threads yields `k + 1`-way
///    parallelism and an empty pool degrades to plain sequential code.
///
/// Metrics: `fairem.pool.tasks` counts executed chunks,
/// `fairem.pool.parallel_fors` counts jobs, `fairem.pool.workers` gauges
/// the worker-thread count, and `fairem.pool.queue_wait_seconds` is a
/// histogram of submit-to-chunk-start latency (scheduling overhead).
class ThreadPool {
 public:
  /// Spawns max(0, num_threads - 1) workers: `num_threads` is the total
  /// desired parallelism including the participating caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the participating caller); >= 1.
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(begin, end) over contiguous chunks of [0, n), blocking
  /// until every chunk completed. `grain` is the target chunk size (0
  /// picks one that spreads the range about 4 chunks per thread).
  /// Exceptions thrown by the body are captured and the one from the
  /// lowest-indexed chunk is rethrown on the calling thread after all
  /// chunks finish — deterministic no matter which worker hit it first.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

 private:
  struct Job;

  void WorkerLoop();
  void RunChunks(Job* job);
  static void RunInline(size_t n,
                        const std::function<void(size_t, size_t)>& body);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a job
  std::condition_variable done_cv_;   // the submitter waits here
  Job* job_ = nullptr;                // current job, guarded by mu_
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;

  std::mutex submit_mu_;  // serializes concurrent ParallelFor submitters
};

/// Process-wide intra-cell parallelism knob (the `--intra_jobs` flag).
/// Composes with process-level `--jobs`: a grid sweep at `--jobs J
/// --intra_jobs T` runs up to J worker processes, each of which runs its
/// hot loops on T threads (total parallelism J x T). Values below 1 clamp
/// to 1. Changing the value does not resize an already-running pool; the
/// next GlobalThreadPool() call after a change rebuilds it.
void SetIntraJobs(int n);
int IntraJobs();

/// The lazily-created process-wide pool sized to IntraJobs(). Fork-safe:
/// a forked child (the supervised grid executor's workers) abandons the
/// parent's pool object — worker threads do not survive fork(2) — and
/// lazily rebuilds a fresh pool of its own on first use.
ThreadPool& GlobalThreadPool();

/// ParallelFor on the global pool with Status-returning bodies: runs
/// body(begin, end) over chunks and returns OK only if every chunk did.
/// On failure the error from the lowest-indexed failing chunk is returned
/// (deterministic across worker counts and schedules). Results must be
/// written by index into caller-presized storage.
Status ParallelForChunks(size_t n, size_t grain,
                         const std::function<Status(size_t, size_t)>& body);

/// True while the current thread is executing inside a ParallelFor body —
/// the condition under which further ParallelFor calls run inline.
bool InParallelRegion();

}  // namespace fairem

#endif  // FAIREM_UTIL_THREAD_POOL_H_
