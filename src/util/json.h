#ifndef FAIREM_UTIL_JSON_H_
#define FAIREM_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

// Shared minimal JSON support for the library's own wire formats: metrics
// snapshots, worker telemetry, grid-cell checkpoints, and the serve
// protocol. The parser is a small recursive-descent reader over the subset
// our writers emit (objects, arrays, strings with the writer's escapes,
// numbers, booleans, null); numbers keep their raw text so uint64 counters
// round-trip exactly.

/// Appends `s` as a quoted JSON string with the writer's escape set
/// (backslash, quote, \n, \t, \u00XX for other control bytes).
void AppendJsonString(std::ostringstream* os, const std::string& s);

/// Convenience: AppendJsonString into a fresh string.
std::string JsonQuote(const std::string& s);

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  std::string scalar;  // number text, string contents, or "true"/"false"
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;
};

/// Parses a complete JSON document; trailing bytes are an error. Depth is
/// capped (the parser recurses per nesting level), so adversarial input —
/// e.g. a malformed frame off the serve socket — cannot blow the stack.
Result<JsonValue> JsonParse(const std::string& text);

/// Member lookup on an object value; nullptr when absent (or not an object).
const JsonValue* JsonFind(const JsonValue& obj, const std::string& key);

/// Scalar accessors; `what` names the field in error messages.
Result<uint64_t> JsonAsU64(const JsonValue& v, const std::string& what);
Result<int64_t> JsonAsI64(const JsonValue& v, const std::string& what);
Result<double> JsonAsDouble(const JsonValue& v, const std::string& what);
Result<bool> JsonAsBool(const JsonValue& v, const std::string& what);
Result<std::string> JsonAsString(const JsonValue& v, const std::string& what);

}  // namespace fairem

#endif  // FAIREM_UTIL_JSON_H_
