#include "src/util/status.h"

namespace fairem {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUndefinedStatistic:
      return "UndefinedStatistic";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace fairem
