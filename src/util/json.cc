#include "src/util/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/util/string_util.h"

namespace fairem {
namespace {

/// Nesting cap for the recursive parser. Our own writers emit depth <= 5;
/// 64 leaves headroom without letting hostile input recurse to overflow.
constexpr int kMaxDepth = 64;

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    FAIREM_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing bytes after document");
    return root;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument("JSON: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Err(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    FAIREM_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape digit");
            }
          }
          // Our writers only use \u for control bytes.
          if (value >= 0x80) return Err("unsupported \\u escape");
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          return Err("unsupported escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth >= kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      if (TryConsume('}')) return Status::OK();
      while (true) {
        FAIREM_ASSIGN_OR_RETURN(std::string key, ParseString());
        FAIREM_RETURN_NOT_OK(Expect(':'));
        JsonValue value;
        FAIREM_RETURN_NOT_OK(ParseValue(&value, depth + 1));
        out->members[key] = std::move(value);
        if (TryConsume(',')) continue;
        return Expect('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      if (TryConsume(']')) return Status::OK();
      while (true) {
        JsonValue value;
        FAIREM_RETURN_NOT_OK(ParseValue(&value, depth + 1));
        out->items.push_back(std::move(value));
        if (TryConsume(',')) continue;
        return Expect(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      FAIREM_ASSIGN_OR_RETURN(out->scalar, ParseString());
      return Status::OK();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      out->kind = JsonValue::kNumber;
      size_t start = pos_;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '-' ||
            d == '+' || d == '.' || d == 'e' || d == 'E') {
          ++pos_;
        } else {
          break;
        }
      }
      out->scalar = text_.substr(start, pos_ - start);
      return Status::OK();
    }
    for (const char* word : {"true", "false", "null"}) {
      size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) == 0) {
        out->kind = word[0] == 'n' ? JsonValue::kNull : JsonValue::kBool;
        out->scalar = word;
        pos_ += len;
        return Status::OK();
      }
    }
    return Err("unexpected character");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void AppendJsonString(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

std::string JsonQuote(const std::string& s) {
  std::ostringstream os;
  AppendJsonString(&os, s);
  return os.str();
}

Result<JsonValue> JsonParse(const std::string& text) {
  return JsonReader(text).Parse();
}

const JsonValue* JsonFind(const JsonValue& obj, const std::string& key) {
  auto it = obj.members.find(key);
  return it == obj.members.end() ? nullptr : &it->second;
}

Result<uint64_t> JsonAsU64(const JsonValue& v, const std::string& what) {
  if (v.kind != JsonValue::kNumber) {
    return Status::InvalidArgument("JSON: " + what + " is not a number");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long out = std::strtoull(v.scalar.c_str(), &end, 10);
  if (errno != 0 || end == v.scalar.c_str() || *end != '\0') {
    return Status::InvalidArgument("JSON: bad integer for " + what);
  }
  return static_cast<uint64_t>(out);
}

Result<int64_t> JsonAsI64(const JsonValue& v, const std::string& what) {
  if (v.kind != JsonValue::kNumber) {
    return Status::InvalidArgument("JSON: " + what + " is not a number");
  }
  errno = 0;
  char* end = nullptr;
  long long out = std::strtoll(v.scalar.c_str(), &end, 10);
  if (errno != 0 || end == v.scalar.c_str() || *end != '\0') {
    return Status::InvalidArgument("JSON: bad integer for " + what);
  }
  return static_cast<int64_t>(out);
}

Result<double> JsonAsDouble(const JsonValue& v, const std::string& what) {
  double out = 0.0;
  if (v.kind != JsonValue::kNumber || !ParseDouble(v.scalar, &out)) {
    return Status::InvalidArgument("JSON: " + what + " is not a number");
  }
  return out;
}

Result<bool> JsonAsBool(const JsonValue& v, const std::string& what) {
  if (v.kind != JsonValue::kBool) {
    return Status::InvalidArgument("JSON: " + what + " is not a boolean");
  }
  return v.scalar == "true";
}

Result<std::string> JsonAsString(const JsonValue& v, const std::string& what) {
  if (v.kind != JsonValue::kString) {
    return Status::InvalidArgument("JSON: " + what + " is not a string");
  }
  return v.scalar;
}

}  // namespace fairem
