#ifndef FAIREM_UTIL_RESULT_H_
#define FAIREM_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace fairem {

/// A value-or-error type in the style of arrow::Result.
///
/// A Result<T> holds either a T (when the Status is OK) or an error Status.
/// Accessing the value of an errored Result aborts the process, so callers
/// must check ok() (or use FAIREM_ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    FAIREM_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if this result holds an error.
  const T& value() const& {
    FAIREM_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    FAIREM_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    FAIREM_CHECK(ok(), "Result::value() on error: " + status_.ToString());
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns the Status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define FAIREM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)  \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define FAIREM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define FAIREM_ASSIGN_OR_RETURN_NAME(a, b) FAIREM_ASSIGN_OR_RETURN_CONCAT(a, b)

#define FAIREM_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  FAIREM_ASSIGN_OR_RETURN_IMPL(                                              \
      FAIREM_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, rexpr)

}  // namespace fairem

#endif  // FAIREM_UTIL_RESULT_H_
