#ifndef FAIREM_UTIL_STATUS_H_
#define FAIREM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fairem {

/// Error categories used across the library. Mirrors the usual
/// database-library convention (Arrow/RocksDB style): operations that can
/// fail return a Status (or a Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  /// A statistic is undefined because its denominator is empty (e.g. PPV of
  /// a group with no predicted matches). Callers typically skip such groups.
  kUndefinedStatistic,
  /// The operation was interrupted cooperatively (SIGINT/SIGTERM shutdown of
  /// a supervised run). Never retried; callers exit with a distinct code.
  kCancelled,
  /// The service cannot take the request right now (admission queue full,
  /// daemon draining, peer disconnected). Retryable: back off and try again;
  /// serve responses carry a retry_after_ms hint.
  kUnavailable,
  /// A per-query (or per-IO) deadline expired before the operation finished.
  /// A definite outcome, not a hang — retrying needs a larger deadline, so
  /// it is not retried automatically.
  kDeadlineExceeded,
};

/// Returns a short human-readable name for a status code, e.g.
/// "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// An OK status carries no message and no allocation. Error statuses carry a
/// code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status UndefinedStatistic(std::string msg) {
    return Status(StatusCode::kUndefinedStatistic, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUndefinedStatistic() const {
    return code_ == StatusCode::kUndefinedStatistic;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" for success, "<Code>: <message>" otherwise.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define FAIREM_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::fairem::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace fairem

#endif  // FAIREM_UTIL_STATUS_H_
