#include "src/util/io_util.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <chrono>

namespace fairem {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ErrnoStatus(const char* op, int err) {
  std::string msg = std::string(op) + " failed: " + ::strerror(err);
  if (err == EPIPE || err == ECONNRESET) {
    return Status(StatusCode::kUnavailable, "peer disconnected: " + msg);
  }
  return Status::IOError(std::move(msg));
}

}  // namespace

Status ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status(StatusCode::kUnavailable,
                    "eof after " + std::to_string(got) + " of " +
                        std::to_string(n) + " bytes");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("read", errno);
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < n) {
    ssize_t w = ::write(fd, p + written, n - written);
    if (w >= 0) {
      written += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("write", errno);
  }
  return Status::OK();
}

Status WriteFull(int fd, const std::string& data) {
  return WriteFull(fd, data.data(), data.size());
}

Status PollFd(int fd, short events, double timeout_s) {
  const double start = MonotonicSeconds();
  for (;;) {
    int remaining_ms = -1;
    if (timeout_s > 0.0) {
      double left = timeout_s - (MonotonicSeconds() - start);
      if (left <= 0.0) {
        return Status(StatusCode::kDeadlineExceeded,
                      "poll deadline of " + std::to_string(timeout_s) +
                          "s expired");
      }
      remaining_ms = static_cast<int>(left * 1000.0) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, remaining_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (rc == 0) continue;  // re-check the deadline at the top
    // POLLIN alongside POLLHUP means buffered bytes remain readable; only a
    // bare hangup/error is a dead peer.
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (pfd.revents & events) == 0) {
      return Status(StatusCode::kUnavailable, "peer hung up");
    }
    return Status::OK();
  }
}

Status ReadFullDeadline(int fd, void* buf, size_t n, double timeout_s) {
  const double start = MonotonicSeconds();
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    double left =
        timeout_s > 0.0 ? timeout_s - (MonotonicSeconds() - start) : 0.0;
    if (timeout_s > 0.0 && left <= 0.0) {
      return Status(StatusCode::kDeadlineExceeded,
                    "read deadline expired after " + std::to_string(got) +
                        " of " + std::to_string(n) + " bytes");
    }
    FAIREM_RETURN_NOT_OK(PollFd(fd, POLLIN, left));
    ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status(StatusCode::kUnavailable,
                    "eof after " + std::to_string(got) + " of " +
                        std::to_string(n) + " bytes");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("read", errno);
  }
  return Status::OK();
}

Status WriteFullDeadline(int fd, const void* data, size_t n,
                         double timeout_s) {
  const double start = MonotonicSeconds();
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < n) {
    double left =
        timeout_s > 0.0 ? timeout_s - (MonotonicSeconds() - start) : 0.0;
    if (timeout_s > 0.0 && left <= 0.0) {
      return Status(StatusCode::kDeadlineExceeded,
                    "write deadline expired after " + std::to_string(written) +
                        " of " + std::to_string(n) + " bytes");
    }
    FAIREM_RETURN_NOT_OK(PollFd(fd, POLLOUT, left));
    ssize_t w = ::write(fd, p + written, n - written);
    if (w >= 0) {
      written += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("write", errno);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError("cannot open '" + path +
                           "': " + ::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r > 0) {
      out.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) break;
    if (errno == EINTR) continue;
    int err = errno;
    ::close(fd);
    return Status::IOError("read of '" + path +
                           "' failed: " + ::strerror(err));
  }
  ::close(fd);
  return out;
}

void IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace fairem
