#include "src/util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fairem {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimAscii(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(v)) return false;
  if (out != nullptr) *out = v;
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace fairem
