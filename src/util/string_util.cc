#include "src/util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace fairem {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsValidUtf8(std::string_view s) {
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    size_t len;
    uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xe0) == 0xc0) {
      len = 2;
      cp = c & 0x1f;
    } else if ((c & 0xf0) == 0xe0) {
      len = 3;
      cp = c & 0x0f;
    } else if ((c & 0xf8) == 0xf0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;  // stray continuation or invalid lead byte
    }
    if (i + len > s.size()) return false;
    for (size_t j = 1; j < len; ++j) {
      unsigned char cont = static_cast<unsigned char>(s[i + j]);
      if ((cont & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (cont & 0x3f);
    }
    // Overlong encodings, UTF-16 surrogates, and out-of-range code points.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || (cp >= 0xd800 && cp <= 0xdfff) ||
        cp > 0x10ffff) {
      return false;
    }
    i += len;
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimAscii(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(v)) return false;
  if (out != nullptr) *out = v;
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace fairem
