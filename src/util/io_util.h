#ifndef FAIREM_UTIL_IO_UTIL_H_
#define FAIREM_UTIL_IO_UTIL_H_

#include <cstddef>
#include <string>

#include "src/util/result.h"

namespace fairem {

// EINTR/partial-IO-safe descriptor helpers, shared by the supervisor pipe
// protocol, the telemetry sidecar reads, and the serve daemon's socket wire
// (DESIGN.md §14). Raw ::read/::write call sites can short-read or
// short-write under signal pressure (SIGPROF from the profiler, SIGCHLD,
// terminal signals); every loop here restarts on EINTR and resumes partial
// transfers.
//
// Error mapping, so callers can tell "the peer went away" (retryable,
// normal under load) from "the descriptor is broken" (a bug or a dying
// disk):
//   * EOF before `n` bytes, EPIPE, ECONNRESET  -> kUnavailable
//   * a deadline expiring mid-transfer         -> kDeadlineExceeded
//   * anything else                            -> kIOError

/// Reads exactly `n` bytes into `buf`, looping over EINTR and partial
/// reads. Blocking fds only (an EAGAIN on a nonblocking fd is kIOError).
Status ReadFull(int fd, void* buf, size_t n);

/// Writes all of `data`, looping over EINTR and partial writes.
Status WriteFull(int fd, const void* data, size_t n);
Status WriteFull(int fd, const std::string& data);

/// ReadFull with a wall-clock budget: polls the fd before every read so a
/// stalled peer costs at most `timeout_s`, not forever. The fd may be
/// blocking or nonblocking. `timeout_s` <= 0 means no deadline.
Status ReadFullDeadline(int fd, void* buf, size_t n, double timeout_s);

/// WriteFull with the same wall-clock budget (slow-reader protection).
Status WriteFullDeadline(int fd, const void* data, size_t n,
                         double timeout_s);

/// Waits until `fd` is ready for `events` (POLLIN / POLLOUT), looping over
/// EINTR against the deadline. kDeadlineExceeded on timeout; POLLERR/POLLHUP
/// with no readable data maps to kUnavailable.
Status PollFd(int fd, short events, double timeout_s);

/// Whole-file read through ReadFull (open + fstat-free loop to EOF), so
/// sidecar and checkpoint loads share the signal-safe path. NotFound when
/// the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Ignores SIGPIPE process-wide (idempotent). Daemon, client, and bench
/// entry points call this so a peer hanging up mid-write surfaces as an
/// EPIPE -> kUnavailable status instead of killing the process.
void IgnoreSigpipe();

}  // namespace fairem

#endif  // FAIREM_UTIL_IO_UTIL_H_
