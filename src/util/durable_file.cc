#include "src/util/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace fairem {

Status WriteFileDurable(const std::string& path, const std::string& contents) {
  std::filesystem::path target(path);
  std::filesystem::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir.string() +
                           "': " + ec.message());
  }
  const std::string tmp = path + ".tmp";
  // POSIX fds rather than fstream: temp+rename only survives power loss if
  // the temp file's data is fsynced before the rename and the directory
  // entry is fsynced after it.
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '" + tmp +
                           "' for writing: " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("write failed for '" + tmp +
                             "': " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("fsync failed for '" + tmp +
                           "': " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("close failed for '" + tmp +
                           "': " + std::strerror(errno));
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot publish '" + path + "'");
  }
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return Status::IOError("cannot open directory '" + dir.string() +
                           "' for fsync: " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    int err = errno;
    ::close(dir_fd);
    return Status::IOError("fsync failed for directory '" + dir.string() +
                           "': " + std::strerror(err));
  }
  ::close(dir_fd);
  return Status::OK();
}

}  // namespace fairem
