#ifndef FAIREM_UTIL_DURABLE_FILE_H_
#define FAIREM_UTIL_DURABLE_FILE_H_

#include <string>

#include "src/util/result.h"

namespace fairem {

/// Atomically and durably replaces the file at `path` with `contents`:
/// writes `<path>.tmp`, fsyncs it, renames it over `path`, and fsyncs the
/// containing directory so the rename itself survives power loss. Missing
/// parent directories are created. A crash — even SIGKILL — at any point
/// leaves either the old file or the new one, never a truncated mix.
///
/// This is the write path shared by checkpoint publication
/// (src/robust/checkpoint.cc) and metrics snapshots
/// (MetricsRegistry::WriteJsonFile): anything a later run might read back
/// must never be observable half-written.
Status WriteFileDurable(const std::string& path, const std::string& contents);

}  // namespace fairem

#endif  // FAIREM_UTIL_DURABLE_FILE_H_
