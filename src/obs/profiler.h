#ifndef FAIREM_OBS_PROFILER_H_
#define FAIREM_OBS_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

// ---------------------------------------------------------------------------
// Sampling profiler (DESIGN.md §13).
//
// A setitimer-driven wall/CPU profiler: every tick a signal handler walks
// the frame-pointer chain of whichever thread got the signal, tags the
// backtrace with the innermost open Span on that thread, and appends it to
// a preallocated lock-free sample buffer. Samples fold into the Brendan
// Gregg "folded stacks" text format (one `frame;frame;...;leaf count` line
// per unique stack), ready for flamegraph.pl / speedscope, and aggregate by
// pipeline stage even where symbols are thin.
//
// Off by default: a Span constructor pays one relaxed atomic load and the
// handler is never installed. Forked grid workers re-arm with
// RestartAfterFork (interval timers do not survive fork) and ship their
// folded text back over the FEMTEL1 PROF frame; the supervisor merges it
// here via AbsorbFolded.

// ------------------------------------------------------------ folded text --

/// A folded-stacks profile: `stack text -> sample count`. Stack text is
/// root-first, ';'-separated; our own collector prefixes every stack with
/// `process:<label>` and `span:<stage>` frames so one merged file still
/// splits by worker process and by pipeline stage.
struct FoldedProfile {
  std::map<std::string, uint64_t> stacks;

  uint64_t TotalSamples() const;
  void Merge(const FoldedProfile& other);
  /// One `stack count` line per entry, sorted by stack text (deterministic).
  std::string ToText() const;
};

/// Inverse of ToText. Lines that do not parse (no trailing count) are
/// skipped, so a truncated file still yields its intact lines.
FoldedProfile FoldedProfileFromText(const std::string& text);

/// Sample count per `process:` root frame of a folded profile — how many
/// samples each process contributed to a merged file.
std::map<std::string, uint64_t> ProcessSampleCounts(
    const FoldedProfile& profile);

/// Per-frame aggregate: `self` counts samples where the frame is the leaf,
/// `total` counts samples where it appears anywhere (once per stack, so a
/// recursive frame is not double-counted). `process:`/`span:` pseudo-frames
/// are excluded.
struct ProfTopRow {
  std::string frame;
  uint64_t self = 0;
  uint64_t total = 0;
};
std::vector<ProfTopRow> AggregateByFrame(const FoldedProfile& profile);

/// Per-stage aggregate over the `span:` pseudo-frame. Samples taken outside
/// any Span appear as the "(untagged)" stage and do not count as attributed.
struct StageShare {
  std::string stage;
  uint64_t samples = 0;
  double share = 0.0;  // samples / total
};
struct StageBreakdown {
  std::vector<StageShare> stages;  // sorted by samples, descending
  uint64_t total_samples = 0;
  uint64_t attributed_samples = 0;
  double AttributedFraction() const;
};
StageBreakdown AggregateByStage(const FoldedProfile& profile);

/// Compares per-stage sample shares of two profiles. Returns one
/// human-readable drift line per stage whose share differs by more than
/// `tolerance` (absolute share difference), considering only stages whose
/// share reaches `min_share` in at least one profile — small stages are all
/// noise at ~100 Hz. Empty result = the profiles agree.
std::vector<std::string> CompareStageShares(const FoldedProfile& a,
                                            const FoldedProfile& b,
                                            double tolerance,
                                            double min_share);

/// `fairem proftop` tables. ByStack is a top-`top_n` self/total table over
/// symbolized frames; ByStage lists every stage plus a final
/// "attributed N/M samples (P%)" line (the line bench_smoke greps).
std::string RenderProfTopByStack(const FoldedProfile& profile, int top_n);
std::string RenderProfTopByStage(const FoldedProfile& profile);

// ---------------------------------------------------------------- sampler --

enum class ProfileClock {
  kCpu,   // ITIMER_PROF: ticks in process CPU time (user+system)
  kWall,  // ITIMER_REAL: ticks in wall time, samples blocked time too
};
Result<ProfileClock> ParseProfileClock(const std::string& text);

struct ProfilerOptions {
  int hz = 97;  // deliberately not a round number: avoids lockstep bias
  ProfileClock clock = ProfileClock::kCpu;
  /// Sample slots preallocated at Start; the handler drops (and counts)
  /// samples once the buffer is full. 64Ki slots ≈ 11 CPU-minutes at 97 Hz.
  size_t capacity = 1 << 16;
  /// Root pseudo-frame of every collected stack; the supervisor gives each
  /// worker "worker_<pid>" via RestartAfterFork.
  std::string process_label = "parent";
};

class Profiler {
 public:
  static Profiler& Global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Allocates the sample buffer, installs the signal handler, registers
  /// the calling thread's stack bounds, and arms the interval timer.
  /// Fails if already active or on out-of-range options.
  Status Start(const ProfilerOptions& options = {});

  /// Disarms the timer and stops accepting samples; collected samples stay
  /// available to Collect/ExportMetrics. No-op when not active.
  Status Stop();

  bool active() const { return active_; }
  int hz() const { return options_.hz; }

  /// Re-arms in a forked child: the kernel clears interval timers across
  /// fork, and the inherited sample buffer holds the parent's samples. Must
  /// be called before the child does profiled work; resets the buffer and
  /// relabels collected stacks with `process_label`. No-op when the parent
  /// was not profiling at fork time.
  Status RestartAfterFork(const std::string& process_label);

  /// Folds and symbolizes this process's own samples (dladdr + demangle;
  /// unresolvable PCs render as `module+0x<offset>`). Callable while
  /// sampling is active — in-flight samples are simply not yet visible.
  FoldedProfile Collect();

  /// Merges a folded profile shipped by another process (FEMTEL1 PROF frame
  /// or profile sidecar). Thread-safe; dedup is the caller's business.
  void AbsorbFolded(const std::string& folded_text);

  /// This process's samples plus everything absorbed from workers.
  FoldedProfile MergedProfile();

  /// Counts samples collected since the previous call into
  /// `fairem.profile.samples`, `fairem.profile.dropped_samples`, and
  /// per-stage `fairem.profile.stage.<stage>.samples` counters. Counters
  /// (not gauges) so worker deltas merge additively across processes.
  void ExportMetrics();

  /// Derives `fairem.profile.stage.<stage>.cpu_seconds` gauges from the
  /// `.samples` counters currently in the registry (samples / hz). Parent
  /// only, after worker deltas merged — workers must not ship these gauges
  /// or they would clobber the parent's aggregation.
  void ExportStageCpuGauges();

  uint64_t SampleCount() const;
  uint64_t DroppedCount() const;

  /// Records the calling thread's stack bounds for the frame-pointer walk;
  /// a thread that never registered gets leaf-PC-only samples. Called by
  /// Start for the calling thread and by the thread pool for its workers.
  /// Cheap and idempotent; safe to call with the profiler off.
  static void RegisterCurrentThread();

 private:
  // The sample buffer and the flags the signal handler touches live as
  // file-scope globals in profiler.cc: the handler must reach them without
  // dereferencing an object pointer whose initialization it could interrupt.
  Status Arm();

  bool active_ = false;
  ProfilerOptions options_;
  size_t exported_upto_ = 0;
  uint64_t exported_dropped_ = 0;

  std::mutex merge_mu_;
  FoldedProfile absorbed_;
};

// -------------------------------------------------------------- span hooks --

namespace profiler_internal {
extern std::atomic<bool> g_stage_tracking;
}  // namespace profiler_internal

/// True while a profiler is sampling — the only check Span pays when off.
inline bool ProfilerStageTrackingEnabled() {
  return profiler_internal::g_stage_tracking.load(std::memory_order_relaxed);
}

/// Process resource snapshot taken at span boundaries while profiling:
/// resident set from /proc/self/statm, cumulative storage I/O from
/// /proc/self/io. `ok` is false when the files are unreadable.
struct ProfSpanResources {
  bool ok = false;
  int64_t rss_kb = 0;
  uint64_t io_read_bytes = 0;
  uint64_t io_write_bytes = 0;
};

/// Pushes `name` onto the calling thread's stage stack (fixed-size buffers
/// the signal handler reads without allocation) and snapshots resources.
ProfSpanResources ProfilerSpanBegin(const char* name, size_t len);

/// Pops the stage and attributes the resource deltas since `start` to it:
/// `fairem.profile.span.<name>.io_{read,write}_bytes` counters and an
/// `.rss_delta_kb` gauge.
void ProfilerSpanEnd(const ProfSpanResources& start);

/// `fairem.proc.{peak_rss_mb,user_cpu_s,sys_cpu_s,vol_ctx_switches,
/// invol_ctx_switches}` gauges from getrusage(RUSAGE_SELF) — the
/// end-of-run resource footprint every bench/CLI run exports so benchdiff
/// can gate on memory, not just time.
void EmitProcessResourceGauges();

}  // namespace fairem

#endif  // FAIREM_OBS_PROFILER_H_
