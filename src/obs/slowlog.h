#ifndef FAIREM_OBS_SLOWLOG_H_
#define FAIREM_OBS_SLOWLOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace fairem {

// Structured slow-query log (DESIGN.md §16): the router and the serve
// daemon each append one wide-event JSON line per query that ran longer
// than --slow_query_ms — trace id, op, key, outcome, total time, and the
// query's full span breakdown — so a p95 regression links to concrete
// queries without replaying load. Rate-limited by a token bucket: a fleet
// melting down must not also melt its own disk. `fairem slowlog FILE`
// renders the file.

/// One slow-query wide event, as handed to the logger.
struct SlowQueryEvent {
  std::string process;   // "router" | "daemon"
  std::string trace_id;  // 32-hex, empty when the query was untraced
  uint64_t id = 0;       // correlation id on this hop
  std::string op;        // "cell", "stats", ...
  std::string key;       // cell key ("dataset.mode.matcher"), if any
  std::string status;    // "OK" or the status code name
  double total_ms = 0.0;
  std::vector<WireSpan> spans;
};

std::string SerializeSlowQueryEvent(const SlowQueryEvent& event,
                                    double slow_ms, int64_t ts_unix_us);

/// Parses one slow-log line back into an event. Tolerant field-by-field
/// (a reader must survive lines from newer writers); a line that is not a
/// JSON object at all is an error — callers skip it and keep reading.
/// `ts_unix_us` / `slow_ms` receive the envelope fields when non-null.
Result<SlowQueryEvent> ParseSlowQueryEvent(const std::string& line,
                                           int64_t* ts_unix_us = nullptr,
                                           double* slow_ms = nullptr);

class SlowQueryLogger {
 public:
  /// Disabled (never logs) when `path` is empty or slow_ms <= 0.
  /// `max_per_s` bounds the write rate; bursts up to 2x are allowed.
  SlowQueryLogger(std::string path, double slow_ms, double max_per_s = 5.0);
  ~SlowQueryLogger();

  SlowQueryLogger(const SlowQueryLogger&) = delete;
  SlowQueryLogger& operator=(const SlowQueryLogger&) = delete;

  bool enabled() const { return !path_.empty() && slow_ms_ > 0.0; }
  double slow_ms() const { return slow_ms_; }

  /// Appends `event` as one JSON line if it qualifies (total_ms >= slow_ms
  /// and the token bucket has budget). `now_s` is the caller's monotonic
  /// clock (the daemons already track one). Counts
  /// fairem.slowlog.written / fairem.slowlog.suppressed.
  void MaybeLog(const SlowQueryEvent& event, double now_s);

 private:
  std::string path_;
  double slow_ms_ = 0.0;
  double max_per_s_ = 5.0;
  std::mutex mu_;
  int fd_ = -1;
  bool open_failed_ = false;
  double tokens_ = 0.0;
  double last_refill_s_ = 0.0;
  bool refilled_once_ = false;
};

}  // namespace fairem

#endif  // FAIREM_OBS_SLOWLOG_H_
