#include "src/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/durable_file.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// splitmix64 finisher: a cheap, well-mixed 64-bit hash for id generation.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t IdSeed() {
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return SplitMix64(now ^ (static_cast<uint64_t>(::getpid()) << 32));
}

/// Small sequential thread ids (chrome://tracing renders one row per tid).
uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open span ids; the top is the parent of the next
/// span started on this thread.
std::vector<uint64_t>& ThreadSpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

void AppendJsonEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *os << ' ';
        } else {
          *os << c;
        }
    }
  }
}

}  // namespace

std::string TraceContext::TraceIdHex() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(trace_hi),
                static_cast<unsigned long long>(trace_lo));
  return std::string(buf, 32);
}

TraceContext NewTraceContext() {
  static std::atomic<uint64_t> sequence{0};
  static const uint64_t seed = IdSeed();
  TraceContext ctx;
  const uint64_t n = sequence.fetch_add(1, std::memory_order_relaxed);
  ctx.trace_hi = SplitMix64(seed ^ n);
  ctx.trace_lo = SplitMix64(ctx.trace_hi + n);
  if ((ctx.trace_hi | ctx.trace_lo) == 0) ctx.trace_lo = 1;
  return ctx;
}

bool ParseTraceIdHex(const std::string& hex, uint64_t* hi, uint64_t* lo) {
  *hi = 0;
  *lo = 0;
  if (hex.size() != 32) return false;
  uint64_t parts[2] = {0, 0};
  for (size_t i = 0; i < 32; ++i) {
    char c = hex[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    parts[i / 16] = (parts[i / 16] << 4) | nibble;
  }
  if ((parts[0] | parts[1]) == 0) return false;  // all-zero = untraced
  *hi = parts[0];
  *lo = parts[1];
  return true;
}

uint64_t NewSpanId() {
  static std::atomic<uint64_t> sequence{0};
  static const uint64_t seed = IdSeed();
  // Re-mix the pid on every call, not just in the seed: the id stream must
  // diverge from the parent's after fork (the daemon forks a worker per
  // query, and both sides keep minting ids).
  uint64_t id =
      SplitMix64(seed ^ (static_cast<uint64_t>(::getpid()) << 20) ^
                 sequence.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

int64_t UnixMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string SerializeWireSpans(const std::vector<WireSpan>& spans) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const WireSpan& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    AppendJsonString(&os, s.name);
    os << ",\"process\":";
    AppendJsonString(&os, s.process);
    os << ",\"pid\":" << s.pid << ",\"span_id\":" << s.span_id
       << ",\"parent_span_id\":" << s.parent_span_id
       << ",\"start_unix_us\":" << s.start_unix_us
       << ",\"duration_us\":" << s.duration_us << ",\"args\":[";
    for (size_t i = 0; i < s.annotations.size(); ++i) {
      if (i > 0) os << ",";
      os << "[";
      AppendJsonString(&os, s.annotations[i].first);
      os << ",";
      AppendJsonString(&os, s.annotations[i].second);
      os << "]";
    }
    os << "]}";
  }
  os << "]";
  return os.str();
}

std::vector<WireSpan> ParseWireSpans(const JsonValue& array) {
  static Counter* malformed = MetricsRegistry::Global().GetCounter(
      "fairem.trace.malformed_spans");
  std::vector<WireSpan> out;
  if (array.kind != JsonValue::kArray) {
    malformed->Increment();
    return out;
  }
  for (const JsonValue& item : array.items) {
    WireSpan s;
    const JsonValue* name =
        item.kind == JsonValue::kObject ? JsonFind(item, "name") : nullptr;
    const JsonValue* span_id =
        item.kind == JsonValue::kObject ? JsonFind(item, "span_id") : nullptr;
    Result<std::string> parsed_name =
        name != nullptr ? JsonAsString(*name, "name")
                        : Result<std::string>(
                              Status::InvalidArgument("span: missing name"));
    Result<uint64_t> parsed_id =
        span_id != nullptr
            ? JsonAsU64(*span_id, "span_id")
            : Result<uint64_t>(Status::InvalidArgument("span: missing id"));
    if (!parsed_name.ok() || !parsed_id.ok() || *parsed_id == 0) {
      malformed->Increment();
      continue;
    }
    s.name = std::move(*parsed_name);
    s.span_id = *parsed_id;
    if (const JsonValue* v = JsonFind(item, "process")) {
      if (Result<std::string> p = JsonAsString(*v, "process"); p.ok()) {
        s.process = std::move(*p);
      }
    }
    if (const JsonValue* v = JsonFind(item, "pid")) {
      if (Result<int64_t> p = JsonAsI64(*v, "pid"); p.ok()) s.pid = *p;
    }
    if (const JsonValue* v = JsonFind(item, "parent_span_id")) {
      if (Result<uint64_t> p = JsonAsU64(*v, "parent_span_id"); p.ok()) {
        s.parent_span_id = *p;
      }
    }
    if (const JsonValue* v = JsonFind(item, "start_unix_us")) {
      if (Result<int64_t> p = JsonAsI64(*v, "start_unix_us"); p.ok()) {
        s.start_unix_us = *p;
      }
    }
    if (const JsonValue* v = JsonFind(item, "duration_us")) {
      if (Result<int64_t> p = JsonAsI64(*v, "duration_us"); p.ok()) {
        s.duration_us = *p;
      }
    }
    if (const JsonValue* v = JsonFind(item, "args")) {
      for (const JsonValue& pair : v->items) {
        if (pair.items.size() != 2) continue;
        s.annotations.emplace_back(pair.items[0].scalar,
                                   pair.items[1].scalar);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<WireSpan> ParseWireSpansJson(const std::string& json) {
  Result<JsonValue> root = JsonParse(json);
  if (!root.ok()) return {};
  return ParseWireSpans(*root);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      epoch_unix_us_(UnixMicrosNow()) {}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::EventsSince(size_t start) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (start >= events_.size()) return {};
  return std::vector<TraceEvent>(events_.begin() +
                                     static_cast<ptrdiff_t>(start),
                                 events_.end());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::RecordImported(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::SetTrackLabel(uint64_t track, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  track_labels_[track] = std::move(label);
}

void Tracer::RecordWireSpans(const std::vector<WireSpan>& spans) {
  for (const WireSpan& s : spans) {
    TraceEvent e;
    e.id = s.span_id;
    e.parent_id = s.parent_span_id;
    e.name = s.name;
    e.thread_id = 1;
    e.track_id = s.pid > 0 ? static_cast<uint64_t>(s.pid) : 1;
    // Wall clock → tracer-epoch ns. A span that started before this
    // process's tracer existed (it can: the client creates its tracer
    // lazily) clamps to 0 rather than wrapping the unsigned field.
    int64_t rel_us = s.start_unix_us - epoch_unix_us_;
    if (rel_us < 0) rel_us = 0;
    e.start_ns = static_cast<uint64_t>(rel_us) * 1000;
    e.duration_ns =
        s.duration_us > 0 ? static_cast<uint64_t>(s.duration_us) * 1000 : 0;
    e.args = s.annotations;
    if (s.pid > 0 && !s.process.empty()) {
      SetTrackLabel(e.track_id,
                    "fairem " + s.process + " " + std::to_string(s.pid));
    }
    RecordImported(std::move(e));
  }
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> events;
  std::map<uint64_t, std::string> labels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    labels = track_labels_;
  }
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  // One process_name metadata event per track, so the per-worker tracks
  // read "worker <pid>" instead of a bare number in the trace viewer.
  // Imported distributed spans label their tracks "fairem <process> <pid>".
  std::set<uint64_t> tracks;
  for (const TraceEvent& e : events) {
    tracks.insert(e.track_id == 0 ? 1 : e.track_id);
  }
  for (uint64_t track : tracks) {
    os << (first ? "\n" : ",\n");
    first = false;
    auto label = labels.find(track);
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << track
       << ", \"args\": {\"name\": \"";
    AppendJsonEscaped(&os,
                      label != labels.end()
                          ? label->second
                          : (track == 1 ? std::string("fairem")
                                        : "fairem worker " +
                                              std::to_string(track)));
    os << "\"}}";
  }
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"";
    AppendJsonEscaped(&os, e.name);
    // Complete ("X") events; timestamps/durations are microseconds. The
    // Chrome "pid" field is our track id: 1 for this process, a worker's
    // real pid for imported spans.
    os << "\", \"cat\": \"fairem\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(e.start_ns) / 1000.0
       << ", \"dur\": " << static_cast<double>(e.duration_ns) / 1000.0
       << ", \"pid\": " << (e.track_id == 0 ? 1 : e.track_id)
       << ", \"tid\": " << e.thread_id << ", \"args\": {";
    os << "\"span_id\": " << e.id << ", \"parent_id\": " << e.parent_id
       << ", \"depth\": " << e.depth;
    for (const auto& [key, value] : e.args) {
      os << ", \"";
      AppendJsonEscaped(&os, key);
      os << "\": \"";
      AppendJsonEscaped(&os, value);
      os << "\"";
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  // Durable like every other observability artifact: parents are created,
  // and a crash mid-write leaves the previous file, not a truncated one.
  return WriteFileDurable(path, ChromeTraceJson());
}

std::string Tracer::FlatSummary() const {
  struct Agg {
    uint64_t total_ns = 0;
    std::vector<uint64_t> durations_ns;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Events()) {
    Agg& agg = by_name[e.name];
    agg.total_ns += e.duration_ns;
    agg.durations_ns.push_back(e.duration_ns);
  }
  // Nearest-rank quantile over the exact per-span durations (unlike
  // histogram quantiles there is no bucketing error here).
  auto quantile_s = [](const std::vector<uint64_t>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    double rank = q * static_cast<double>(sorted.size() - 1);
    size_t idx = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(idx);
    double lo = static_cast<double>(sorted[idx]);
    double hi = static_cast<double>(sorted[std::min(idx + 1, sorted.size() - 1)]);
    return (lo + (hi - lo) * frac) / 1e9;
  };
  size_t width = 4;
  for (const auto& [name, agg] : by_name) {
    width = std::max(width, name.size());
  }
  std::ostringstream os;
  os << "span";
  os << std::string(width - 4 + 2, ' ')
     << "count  total_s   mean_s    p50_s    p95_s    p99_s\n";
  for (auto& [name, agg] : by_name) {
    std::sort(agg.durations_ns.begin(), agg.durations_ns.end());
    uint64_t count = agg.durations_ns.size();
    double total_s = static_cast<double>(agg.total_ns) / 1e9;
    double mean_s = count > 0 ? total_s / static_cast<double>(count) : 0.0;
    os << name << std::string(width - name.size() + 2, ' ');
    std::string count_str = std::to_string(count);
    os << std::string(count_str.size() < 5 ? 5 - count_str.size() : 0, ' ')
       << count_str << "  " << FormatDouble(total_s, 4) << "  "
       << FormatDouble(mean_s, 4) << "  " << FormatDouble(quantile_s(agg.durations_ns, 0.50), 4)
       << "  " << FormatDouble(quantile_s(agg.durations_ns, 0.95), 4) << "  "
       << FormatDouble(quantile_s(agg.durations_ns, 0.99), 4) << "\n";
  }
  return os.str();
}

Span::Span(std::string name, double* elapsed_seconds_out)
    : elapsed_out_(elapsed_seconds_out) {
  Tracer& tracer = Tracer::Global();
  recording_ = tracer.enabled();
  profiling_ = ProfilerStageTrackingEnabled();
  if (profiling_) prof_start_ = ProfilerSpanBegin(name.data(), name.size());
  timing_ = recording_ || elapsed_out_ != nullptr;
  if (!timing_) return;
  start_ = std::chrono::steady_clock::now();
  if (!recording_) return;
  event_.name = std::move(name);
  event_.id = tracer.next_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint64_t>& stack = ThreadSpanStack();
  event_.parent_id = stack.empty() ? 0 : stack.back();
  event_.depth = static_cast<int>(stack.size());
  event_.thread_id = CurrentThreadId();
  event_.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                           tracer.epoch_)
          .count());
  stack.push_back(event_.id);
}

Span::~Span() {
  // Pop the profiler stage first: the pop is balanced against the ctor's
  // push even if the profiler stopped mid-span, and any samples taken while
  // the trace event below is recorded belong to the parent span.
  if (profiling_) ProfilerSpanEnd(prof_start_);
  if (!timing_) return;
  double elapsed = ElapsedSeconds();
  if (elapsed_out_ != nullptr) *elapsed_out_ = elapsed;
  if (!recording_) return;
  ThreadSpanStack().pop_back();
  event_.duration_ns = static_cast<uint64_t>(elapsed * 1e9);
  Tracer::Global().Record(std::move(event_));
}

void Span::AddArg(const std::string& key, std::string value) {
  if (!recording_) return;
  event_.args.emplace_back(key, std::move(value));
}

double Span::ElapsedSeconds() const {
  if (!timing_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace fairem
