#include "src/obs/trace.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>

#include "src/util/durable_file.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// Small sequential thread ids (chrome://tracing renders one row per tid).
uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread stack of open span ids; the top is the parent of the next
/// span started on this thread.
std::vector<uint64_t>& ThreadSpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

void AppendJsonEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *os << ' ';
        } else {
          *os << c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::EventsSince(size_t start) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (start >= events_.size()) return {};
  return std::vector<TraceEvent>(events_.begin() +
                                     static_cast<ptrdiff_t>(start),
                                 events_.end());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::RecordImported(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  // One process_name metadata event per track, so the per-worker tracks
  // read "worker <pid>" instead of a bare number in the trace viewer.
  std::set<uint64_t> tracks;
  for (const TraceEvent& e : events) {
    tracks.insert(e.track_id == 0 ? 1 : e.track_id);
  }
  for (uint64_t track : tracks) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << track
       << ", \"args\": {\"name\": \""
       << (track == 1 ? std::string("fairem")
                      : "fairem worker " + std::to_string(track))
       << "\"}}";
  }
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"";
    AppendJsonEscaped(&os, e.name);
    // Complete ("X") events; timestamps/durations are microseconds. The
    // Chrome "pid" field is our track id: 1 for this process, a worker's
    // real pid for imported spans.
    os << "\", \"cat\": \"fairem\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(e.start_ns) / 1000.0
       << ", \"dur\": " << static_cast<double>(e.duration_ns) / 1000.0
       << ", \"pid\": " << (e.track_id == 0 ? 1 : e.track_id)
       << ", \"tid\": " << e.thread_id << ", \"args\": {";
    os << "\"span_id\": " << e.id << ", \"parent_id\": " << e.parent_id
       << ", \"depth\": " << e.depth;
    for (const auto& [key, value] : e.args) {
      os << ", \"";
      AppendJsonEscaped(&os, key);
      os << "\": \"";
      AppendJsonEscaped(&os, value);
      os << "\"";
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  // Durable like every other observability artifact: parents are created,
  // and a crash mid-write leaves the previous file, not a truncated one.
  return WriteFileDurable(path, ChromeTraceJson());
}

std::string Tracer::FlatSummary() const {
  struct Agg {
    uint64_t total_ns = 0;
    std::vector<uint64_t> durations_ns;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Events()) {
    Agg& agg = by_name[e.name];
    agg.total_ns += e.duration_ns;
    agg.durations_ns.push_back(e.duration_ns);
  }
  // Nearest-rank quantile over the exact per-span durations (unlike
  // histogram quantiles there is no bucketing error here).
  auto quantile_s = [](const std::vector<uint64_t>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    double rank = q * static_cast<double>(sorted.size() - 1);
    size_t idx = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(idx);
    double lo = static_cast<double>(sorted[idx]);
    double hi = static_cast<double>(sorted[std::min(idx + 1, sorted.size() - 1)]);
    return (lo + (hi - lo) * frac) / 1e9;
  };
  size_t width = 4;
  for (const auto& [name, agg] : by_name) {
    width = std::max(width, name.size());
  }
  std::ostringstream os;
  os << "span";
  os << std::string(width - 4 + 2, ' ')
     << "count  total_s   mean_s    p50_s    p95_s    p99_s\n";
  for (auto& [name, agg] : by_name) {
    std::sort(agg.durations_ns.begin(), agg.durations_ns.end());
    uint64_t count = agg.durations_ns.size();
    double total_s = static_cast<double>(agg.total_ns) / 1e9;
    double mean_s = count > 0 ? total_s / static_cast<double>(count) : 0.0;
    os << name << std::string(width - name.size() + 2, ' ');
    std::string count_str = std::to_string(count);
    os << std::string(count_str.size() < 5 ? 5 - count_str.size() : 0, ' ')
       << count_str << "  " << FormatDouble(total_s, 4) << "  "
       << FormatDouble(mean_s, 4) << "  " << FormatDouble(quantile_s(agg.durations_ns, 0.50), 4)
       << "  " << FormatDouble(quantile_s(agg.durations_ns, 0.95), 4) << "  "
       << FormatDouble(quantile_s(agg.durations_ns, 0.99), 4) << "\n";
  }
  return os.str();
}

Span::Span(std::string name, double* elapsed_seconds_out)
    : elapsed_out_(elapsed_seconds_out) {
  Tracer& tracer = Tracer::Global();
  recording_ = tracer.enabled();
  profiling_ = ProfilerStageTrackingEnabled();
  if (profiling_) prof_start_ = ProfilerSpanBegin(name.data(), name.size());
  timing_ = recording_ || elapsed_out_ != nullptr;
  if (!timing_) return;
  start_ = std::chrono::steady_clock::now();
  if (!recording_) return;
  event_.name = std::move(name);
  event_.id = tracer.next_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint64_t>& stack = ThreadSpanStack();
  event_.parent_id = stack.empty() ? 0 : stack.back();
  event_.depth = static_cast<int>(stack.size());
  event_.thread_id = CurrentThreadId();
  event_.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                           tracer.epoch_)
          .count());
  stack.push_back(event_.id);
}

Span::~Span() {
  // Pop the profiler stage first: the pop is balanced against the ctor's
  // push even if the profiler stopped mid-span, and any samples taken while
  // the trace event below is recorded belong to the parent span.
  if (profiling_) ProfilerSpanEnd(prof_start_);
  if (!timing_) return;
  double elapsed = ElapsedSeconds();
  if (elapsed_out_ != nullptr) *elapsed_out_ = elapsed;
  if (!recording_) return;
  ThreadSpanStack().pop_back();
  event_.duration_ns = static_cast<uint64_t>(elapsed * 1e9);
  Tracer::Global().Record(std::move(event_));
}

void Span::AddArg(const std::string& key, std::string value) {
  if (!recording_) return;
  event_.args.emplace_back(key, std::move(value));
}

double Span::ElapsedSeconds() const {
  if (!timing_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace fairem
