#ifndef FAIREM_OBS_TRACETOP_H_
#define FAIREM_OBS_TRACETOP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace fairem {

// Analysis behind `fairem tracetop` (DESIGN.md §16): aggregate the span
// breakdowns carried by a slow-query log into per-hop share tables and a
// per-query critical path, and gate two logs against each other on hop
// share drift — the trace-level analogue of `fairem proftop --compare`.

/// Per-span-name aggregate across every event in one slow-query log.
struct HopStats {
  uint64_t count = 0;
  int64_t total_us = 0;
};

struct TraceTopSummary {
  uint64_t events = 0;         // parseable wide-event lines
  uint64_t skipped_lines = 0;  // unparseable lines (torn writes, other
                               // formats) — skipped, never fatal
  uint64_t spans = 0;
  std::map<std::string, HopStats> hops;
  /// Denominator for shares: summed duration of every span, so a hop's
  /// share is the fraction of recorded (not wall-clock) time it owns.
  int64_t total_span_us = 0;
  /// The slowest event's spans, kept for the critical-path rendering.
  std::vector<WireSpan> slowest_spans;
  double slowest_total_ms = 0.0;
  std::string slowest_trace_id;
};

/// Parses a slow-query log (one wide-event JSON line per query).
TraceTopSummary SummarizeSlowLog(const std::string& text);

/// Per-hop table: name, calls, total ms, share of recorded span time,
/// sorted by share descending.
std::string RenderHopShares(const TraceTopSummary& summary);

/// The critical path through one query's span tree: starting from the
/// root (the span whose parent is not in the set), repeatedly descend
/// into the longest child. One line per level with duration and the share
/// of the root's duration.
std::string RenderCriticalPath(const std::vector<WireSpan>& spans);

/// Compares per-hop shares of two logs. A hop whose share moved by more
/// than `tolerance` (absolute) — considering hops at or above `min_share`
/// in either log — yields one drift line; empty means within tolerance.
std::vector<std::string> CompareHopShares(const TraceTopSummary& before,
                                          const TraceTopSummary& after,
                                          double tolerance,
                                          double min_share);

}  // namespace fairem

#endif  // FAIREM_OBS_TRACETOP_H_
