#ifndef FAIREM_OBS_TELEMETRY_H_
#define FAIREM_OBS_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace fairem {

// ---------------------------------------------------------------------------
// Cross-process telemetry: how a supervised worker ships its metrics delta
// and completed trace spans back to the parent. See DESIGN.md §11 for the
// wire format.

/// current − baseline, metric-wise. A forked worker inherits the parent's
/// registry values, so the parent must receive only what the worker itself
/// added: counters subtract (unchanged inherited ones are omitted), gauges
/// are included only when they changed (a stale fork-time copy must not
/// clobber the parent's fresher value), histograms subtract bucket-wise. A
/// histogram whose bounds changed between the snapshots is shipped whole.
/// Metrics first registered during the task ship even at zero, so a merged
/// parent snapshot lists the same metric names a sequential run would.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& baseline,
                              const MetricsSnapshot& current);

/// Inverse of MetricsSnapshotToJson. Derived histogram keys ("mean",
/// "p50", …) are ignored on load and recomputed from the raw buckets.
Result<MetricsSnapshot> MetricsSnapshotFromJson(const std::string& json);

/// Everything one worker attempt ships: which task it ran, which attempt
/// this was (the double-delivery dedup key is (task_key, attempt)), the
/// worker pid (becomes the trace track id), the metrics delta, and the
/// spans completed during the task.
struct WorkerTelemetry {
  int version = 1;
  std::string task_key;
  int attempt = 0;
  int64_t pid = 0;
  MetricsSnapshot metrics;
  std::vector<TraceEvent> spans;
};

std::string SerializeWorkerTelemetry(const WorkerTelemetry& telemetry);
Result<WorkerTelemetry> ParseWorkerTelemetry(const std::string& json);

// ---------------------------------------------------------------------------
// Pipe framing: the FEMTEL1 typed-frame wire (DESIGN.md §13). After the
// magic the wire is a sequence of frames:
//
//   "FEMTEL1\n" { <4-char type> <16 hex digits: byte length> "\n" <bytes> }*
//
// Known frame types: "TELE" (WorkerTelemetry JSON), "PROF" (folded profile
// text), and "PAYL" (the task payload, always the final frame). A frame
// whose type the receiver does not know is skipped — its length field still
// delimits it — with a `fairem.telemetry.unknown_frames` counter bump, so
// an older supervisor reading a newer worker degrades instead of treating
// the wire as corrupt. A wire that does not start with the magic, or whose
// first frame header is malformed, is an unframed payload from a worker
// that crashed before (or never started) shipping telemetry. A wire
// truncated mid-frame keeps the frames already parsed (payload empty).

inline constexpr char kTelemetryMagic[] = "FEMTEL1\n";
inline constexpr char kFrameTelemetry[] = "TELE";
inline constexpr char kFrameProfile[] = "PROF";
inline constexpr char kFramePayload[] = "PAYL";

struct TelemetryFrame {
  std::string type;  // exactly 4 bytes on the wire
  std::string bytes;
};

struct TelemetryWireParse {
  bool framed = false;     // magic present and >= 1 complete frame parsed
  bool truncated = false;  // wire ended mid-frame after the magic
  /// Non-payload frames in wire order, unknown types included (callers
  /// dispatch on `type` and ignore what they do not understand).
  std::vector<TelemetryFrame> frames;
  std::string payload;
};

/// Frames + final PAYL frame, encoded. `frames` must not contain a PAYL
/// frame of its own; the payload always travels last.
std::string EncodeTelemetryWire(const std::vector<TelemetryFrame>& frames,
                                const std::string& payload);

/// Never fails. With no magic (or a malformed first frame header) the whole
/// wire is the payload — the pre-framing degradation path. Unknown frame
/// types are skipped with a counter bump, not an error.
TelemetryWireParse ParseTelemetryWire(const std::string& wire);

/// Legacy single-telemetry-frame convenience over EncodeTelemetryWire.
std::string WrapPayloadWithTelemetry(const std::string& telemetry_json,
                                     const std::string& payload);

struct TelemetrySplit {
  bool has_telemetry = false;
  std::string telemetry_json;
  std::string payload;
};

/// Never fails: a malformed wire is treated as "no telemetry" and becomes
/// the payload wholesale, so a worker killed mid-write degrades to PR-3
/// behaviour instead of erroring. The first TELE frame wins.
TelemetrySplit SplitTelemetryPayload(const std::string& wire);

// ---------------------------------------------------------------------------
// Sidecar files: the crash path. Workers durably write
// `<dir>/<sanitized task_key>.attempt<N>.telemetry.json` before shipping on
// the pipe; the parent sweeps the file up only when the pipe copy was
// missing (crash/timeout), then deletes it.

std::string TelemetrySidecarPath(const std::string& dir,
                                 const std::string& task_key, int attempt);
Status WriteTelemetrySidecar(const std::string& dir,
                             const WorkerTelemetry& telemetry);
Result<WorkerTelemetry> LoadTelemetrySidecarFile(const std::string& path);

/// Profile sidecars mirror the telemetry ones for the PROF frame:
/// `<dir>/<sanitized task_key>.attempt<N>.profile.folded`, written durably
/// by a profiling worker before it ships on the pipe, swept by the parent
/// when the pipe copy never landed (crash/timeout), then deleted.
std::string ProfileSidecarPath(const std::string& dir,
                               const std::string& task_key, int attempt);
Status WriteProfileSidecar(const std::string& dir, const std::string& task_key,
                           int attempt, const std::string& folded_text);
Result<std::string> LoadProfileSidecarFile(const std::string& path);

/// Folds one worker attempt into this process: metrics delta merges into
/// MetricsRegistry::Global() and each span is re-emitted on
/// Tracer::Global() with track_id set to the worker pid. Callers own the
/// (task_key, attempt) dedup; absorbing the same telemetry twice double
/// counts.
void AbsorbWorkerTelemetry(const WorkerTelemetry& telemetry);

// ---------------------------------------------------------------------------
// Live grid progress.

struct ProgressSnapshot {
  size_t total = 0;
  size_t done = 0;
  size_t running = 0;
  size_t retrying = 0;
  size_t failed = 0;
  /// Duration of a cell that finished since the previous Update, or < 0
  /// when none did (the value feeds the ETA histogram exactly once).
  double last_cell_seconds = -1.0;
};

/// Emits a rate-limited progress line on stderr and keeps the
/// fairem.progress.* gauges current. ETA is derived from the
/// fairem.progress.cell_seconds histogram: mean cell duration × remaining
/// cells ÷ parallel jobs; unknown (-1) until the first cell completes.
class ProgressReporter {
 public:
  /// `jobs` scales the ETA for parallel execution; `min_interval_seconds`
  /// is the stderr rate limit. With emit_stderr false only the gauges (and
  /// the ETA histogram) update — how the harness keeps fairem.progress.*
  /// live even when the progress line is off.
  explicit ProgressReporter(size_t total_cells, int jobs = 1,
                            double min_interval_seconds = 0.5,
                            bool emit_stderr = true);

  /// `force` bypasses the rate limit (used for the final line).
  void Update(const ProgressSnapshot& snap, bool force = false);

  double EtaSeconds(const ProgressSnapshot& snap) const;

  /// Pure formatter, e.g. "grid 12/40 done, 4 running, 1 retrying,
  /// 0 failed, eta 38.2s" ("eta ?" when negative).
  static std::string FormatLine(const ProgressSnapshot& snap,
                                double eta_seconds);

 private:
  int jobs_;
  double min_interval_seconds_;
  bool emit_stderr_;
  Histogram* cell_seconds_;
  bool emitted_any_ = false;
  std::chrono::steady_clock::time_point last_emit_;
};

}  // namespace fairem

#endif  // FAIREM_OBS_TELEMETRY_H_
