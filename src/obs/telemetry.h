#ifndef FAIREM_OBS_TELEMETRY_H_
#define FAIREM_OBS_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace fairem {

// ---------------------------------------------------------------------------
// Cross-process telemetry: how a supervised worker ships its metrics delta
// and completed trace spans back to the parent. See DESIGN.md §11 for the
// wire format.

/// current − baseline, metric-wise. A forked worker inherits the parent's
/// registry values, so the parent must receive only what the worker itself
/// added: counters subtract (unchanged inherited ones are omitted), gauges
/// are included only when they changed (a stale fork-time copy must not
/// clobber the parent's fresher value), histograms subtract bucket-wise. A
/// histogram whose bounds changed between the snapshots is shipped whole.
/// Metrics first registered during the task ship even at zero, so a merged
/// parent snapshot lists the same metric names a sequential run would.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& baseline,
                              const MetricsSnapshot& current);

/// Inverse of MetricsSnapshotToJson. Derived histogram keys ("mean",
/// "p50", …) are ignored on load and recomputed from the raw buckets.
Result<MetricsSnapshot> MetricsSnapshotFromJson(const std::string& json);

/// Everything one worker attempt ships: which task it ran, which attempt
/// this was (the double-delivery dedup key is (task_key, attempt)), the
/// worker pid (becomes the trace track id), the metrics delta, and the
/// spans completed during the task.
struct WorkerTelemetry {
  int version = 1;
  std::string task_key;
  int attempt = 0;
  int64_t pid = 0;
  MetricsSnapshot metrics;
  std::vector<TraceEvent> spans;
};

std::string SerializeWorkerTelemetry(const WorkerTelemetry& telemetry);
Result<WorkerTelemetry> ParseWorkerTelemetry(const std::string& json);

// ---------------------------------------------------------------------------
// Pipe framing. The worker prefixes its payload with a telemetry section:
//
//   "FEMTEL1\n" <16 hex digits: telemetry byte length> "\n" <telemetry JSON>
//   <payload bytes, verbatim>
//
// A wire that does not start with the magic is an unframed payload from a
// worker that crashed before (or never started) shipping telemetry; it
// passes through SplitTelemetryPayload untouched.

inline constexpr char kTelemetryMagic[] = "FEMTEL1\n";

std::string WrapPayloadWithTelemetry(const std::string& telemetry_json,
                                     const std::string& payload);

struct TelemetrySplit {
  bool has_telemetry = false;
  std::string telemetry_json;
  std::string payload;
};

/// Never fails: a malformed frame (bad length field, truncated section) is
/// treated as "no telemetry" and the whole wire becomes the payload, so a
/// worker killed mid-write degrades to PR-3 behaviour instead of erroring.
TelemetrySplit SplitTelemetryPayload(const std::string& wire);

// ---------------------------------------------------------------------------
// Sidecar files: the crash path. Workers durably write
// `<dir>/<sanitized task_key>.attempt<N>.telemetry.json` before shipping on
// the pipe; the parent sweeps the file up only when the pipe copy was
// missing (crash/timeout), then deletes it.

std::string TelemetrySidecarPath(const std::string& dir,
                                 const std::string& task_key, int attempt);
Status WriteTelemetrySidecar(const std::string& dir,
                             const WorkerTelemetry& telemetry);
Result<WorkerTelemetry> LoadTelemetrySidecarFile(const std::string& path);

/// Folds one worker attempt into this process: metrics delta merges into
/// MetricsRegistry::Global() and each span is re-emitted on
/// Tracer::Global() with track_id set to the worker pid. Callers own the
/// (task_key, attempt) dedup; absorbing the same telemetry twice double
/// counts.
void AbsorbWorkerTelemetry(const WorkerTelemetry& telemetry);

// ---------------------------------------------------------------------------
// Live grid progress.

struct ProgressSnapshot {
  size_t total = 0;
  size_t done = 0;
  size_t running = 0;
  size_t retrying = 0;
  size_t failed = 0;
  /// Duration of a cell that finished since the previous Update, or < 0
  /// when none did (the value feeds the ETA histogram exactly once).
  double last_cell_seconds = -1.0;
};

/// Emits a rate-limited progress line on stderr and keeps the
/// fairem.progress.* gauges current. ETA is derived from the
/// fairem.progress.cell_seconds histogram: mean cell duration × remaining
/// cells ÷ parallel jobs; unknown (-1) until the first cell completes.
class ProgressReporter {
 public:
  /// `jobs` scales the ETA for parallel execution; `min_interval_seconds`
  /// is the stderr rate limit. With emit_stderr false only the gauges (and
  /// the ETA histogram) update — how the harness keeps fairem.progress.*
  /// live even when the progress line is off.
  explicit ProgressReporter(size_t total_cells, int jobs = 1,
                            double min_interval_seconds = 0.5,
                            bool emit_stderr = true);

  /// `force` bypasses the rate limit (used for the final line).
  void Update(const ProgressSnapshot& snap, bool force = false);

  double EtaSeconds(const ProgressSnapshot& snap) const;

  /// Pure formatter, e.g. "grid 12/40 done, 4 running, 1 retrying,
  /// 0 failed, eta 38.2s" ("eta ?" when negative).
  static std::string FormatLine(const ProgressSnapshot& snap,
                                double eta_seconds);

 private:
  int jobs_;
  double min_interval_seconds_;
  bool emit_stderr_;
  Histogram* cell_seconds_;
  bool emitted_any_ = false;
  std::chrono::steady_clock::time_point last_emit_;
};

}  // namespace fairem

#endif  // FAIREM_OBS_TELEMETRY_H_
