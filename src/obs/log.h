#ifndef FAIREM_OBS_LOG_H_
#define FAIREM_OBS_LOG_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "src/util/result.h"

namespace fairem {

/// Severity levels of the structured logger, ordered: a message is emitted
/// when its level is >= the global level. kOff silences everything.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Short upper-case name, e.g. "INFO".
const char* LogLevelName(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
Result<LogLevel> ParseLogLevel(std::string_view name);

/// The process-wide minimum level. Initialised from the FAIREM_LOG_LEVEL
/// environment variable on first use (default: info); overridable at any
/// time (e.g. from a --log_level flag).
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

/// True when a message at `level` would currently be emitted.
inline bool LogLevelEnabled(LogLevel level) {
  return level >= GlobalLogLevel() && level != LogLevel::kOff;
}

/// Where formatted log lines go. The default sink writes to stderr under a
/// mutex (lines from concurrent threads never interleave). Tests install a
/// capturing sink; passing nullptr restores the default.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;
void SetLogSink(LogSink sink);

/// A structured key=value field. Stream it into FAIREM_LOG to append
/// " key=value" to the message:
///
///   FAIREM_LOG(INFO) << "trained matcher" << LogKv("matcher", name)
///                    << LogKv("seconds", elapsed);
struct LogKv {
  template <typename T>
  LogKv(std::string_view k, const T& v) : key(k) {
    std::ostringstream os;
    os << v;
    value = os.str();
  }
  LogKv(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}

  std::string key;
  std::string value;
};

/// One in-flight log statement; emits through the sink on destruction.
/// Construct via FAIREM_LOG, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  LogMessage& operator<<(const LogKv& kv);

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
  std::string fields_;
};

}  // namespace fairem

/// Structured leveled logging: FAIREM_LOG(INFO) << "msg" << LogKv("k", v);
/// Levels: DEBUG, INFO, WARN, ERROR. The streamed expression is not
/// evaluated at all when the level is filtered out (glog-style dangling-else
/// guard), so disabled log statements cost one level comparison.
#define FAIREM_LOG(severity)                                                 \
  if (!::fairem::LogLevelEnabled(::fairem::internal_logging::kLevel##severity)) \
    ;                                                                        \
  else                                                                       \
    ::fairem::LogMessage(::fairem::internal_logging::kLevel##severity,       \
                         __FILE__, __LINE__)

namespace fairem {
namespace internal_logging {
inline constexpr LogLevel kLevelDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLevelINFO = LogLevel::kInfo;
inline constexpr LogLevel kLevelWARN = LogLevel::kWarn;
inline constexpr LogLevel kLevelERROR = LogLevel::kError;
}  // namespace internal_logging
}  // namespace fairem

#endif  // FAIREM_OBS_LOG_H_
