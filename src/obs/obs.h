#ifndef FAIREM_OBS_OBS_H_
#define FAIREM_OBS_OBS_H_

#include <string>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace fairem {

/// The observability knobs every binary exposes:
///   --log_level L        debug|info|warn|error|off (also: FAIREM_LOG_LEVEL)
///   --trace_out F        enable span tracing, write Chrome trace JSON to F
///   --metrics_out F      write a MetricsRegistry snapshot to F
///   --metrics_format FMT json (default) or prom (Prometheus text
///                        exposition); applies to --metrics_out
///   --profile_out F      enable the sampling profiler, write the folded
///                        stacks (flamegraph input) to F
///   --profile_hz N       profiler sample rate (default 97)
///   --profile_mode M     cpu (default) or wall; applies to --profile_out
struct ObsOptions {
  std::string log_level;   // empty = leave the env/default level alone
  std::string trace_out;   // empty = tracing stays disabled, no file
  std::string metrics_out; // empty = no metrics file
  MetricsFormat metrics_format = MetricsFormat::kJson;
  std::string profile_out;  // empty = profiler stays off, no file
  int profile_hz = 97;
  std::string profile_mode;  // empty/"cpu" or "wall"
};

/// Applies the options to the global logger/tracer/profiler. Tracing is
/// enabled iff trace_out is non-empty, and the sampling profiler starts iff
/// profile_out is non-empty, preserving the zero-overhead default path.
Status ApplyObsOptions(const ObsOptions& options);

/// Writes the trace, folded-profile, and metrics files named in `options`
/// (skipping empty ones), emits the fairem.proc.* rusage gauges, and, when
/// tracing ran, logs the flat span summary at INFO. Ordered so profiler
/// sample counters and rusage gauges land before the metrics snapshot.
Status FlushObsOutputs(const ObsOptions& options);

/// Registers an atexit hook that flushes `options`, so every bench binary
/// gets --trace_out/--metrics_out behaviour from flag parsing alone.
/// Idempotent; later calls overwrite the remembered options.
void FlushObsOutputsAtExit(const ObsOptions& options);

}  // namespace fairem

#endif  // FAIREM_OBS_OBS_H_
