#include "src/obs/telemetry.h"

#include <cstdio>
#include <sstream>

#include "src/util/durable_file.h"
#include "src/util/io_util.h"
#include "src/util/json.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

// JSON plumbing lives in src/util/json; thin local aliases keep the parsing
// code below readable.

Result<uint64_t> AsU64(const JsonValue& v, const std::string& what) {
  return JsonAsU64(v, what);
}

Result<int64_t> AsI64(const JsonValue& v, const std::string& what) {
  return JsonAsI64(v, what);
}

Result<double> AsDouble(const JsonValue& v, const std::string& what) {
  return JsonAsDouble(v, what);
}

const JsonValue* Find(const JsonValue& obj, const std::string& key) {
  return JsonFind(obj, key);
}

Result<MetricsSnapshot> SnapshotFromJsonValue(const JsonValue& root) {
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("telemetry JSON: snapshot is not an object");
  }
  MetricsSnapshot snap;
  if (const JsonValue* counters = Find(root, "counters")) {
    for (const auto& [name, v] : counters->members) {
      FAIREM_ASSIGN_OR_RETURN(snap.counters[name], AsU64(v, "counter " + name));
    }
  }
  if (const JsonValue* gauges = Find(root, "gauges")) {
    for (const auto& [name, v] : gauges->members) {
      FAIREM_ASSIGN_OR_RETURN(snap.gauges[name], AsDouble(v, "gauge " + name));
    }
  }
  if (const JsonValue* histograms = Find(root, "histograms")) {
    for (const auto& [name, v] : histograms->members) {
      if (v.kind != JsonValue::kObject) {
        return Status::InvalidArgument("telemetry JSON: histogram " + name +
                                       " is not an object");
      }
      const JsonValue* bounds = Find(v, "bounds");
      const JsonValue* buckets = Find(v, "bucket_counts");
      const JsonValue* count = Find(v, "count");
      const JsonValue* sum = Find(v, "sum");
      if (bounds == nullptr || buckets == nullptr || count == nullptr ||
          sum == nullptr) {
        return Status::InvalidArgument("telemetry JSON: histogram " + name +
                                       " missing a required field");
      }
      MetricsSnapshot::HistogramData h;
      for (const JsonValue& b : bounds->items) {
        double bound = 0.0;
        FAIREM_ASSIGN_OR_RETURN(bound, AsDouble(b, name + ".bounds"));
        h.bounds.push_back(bound);
      }
      for (const JsonValue& b : buckets->items) {
        uint64_t n = 0;
        FAIREM_ASSIGN_OR_RETURN(n, AsU64(b, name + ".bucket_counts"));
        h.bucket_counts.push_back(n);
      }
      FAIREM_ASSIGN_OR_RETURN(h.count, AsU64(*count, name + ".count"));
      FAIREM_ASSIGN_OR_RETURN(h.sum, AsDouble(*sum, name + ".sum"));
      // Optional exemplars ({"bucket","value","trace_id"} entries); parsed
      // tolerantly — a malformed entry is dropped, never an error, since
      // exemplars are advisory debugging links.
      if (const JsonValue* exemplars = Find(v, "exemplars")) {
        for (const JsonValue& e : exemplars->items) {
          if (e.kind != JsonValue::kObject) continue;
          const JsonValue* bucket = Find(e, "bucket");
          const JsonValue* value = Find(e, "value");
          const JsonValue* trace_id = Find(e, "trace_id");
          if (bucket == nullptr || value == nullptr || trace_id == nullptr) {
            continue;
          }
          Result<uint64_t> b = JsonAsU64(*bucket, "exemplar bucket");
          Result<double> val = AsDouble(*value, "exemplar value");
          if (!b.ok() || !val.ok() || trace_id->kind != JsonValue::kString ||
              trace_id->scalar.empty() || *b >= h.bucket_counts.size()) {
            continue;
          }
          if (h.exemplars.empty()) h.exemplars.resize(h.bucket_counts.size());
          h.exemplars[*b].value = *val;
          h.exemplars[*b].trace_id = trace_id->scalar;
        }
      }
      // Derived keys ("mean", "p50", …) are recomputed, never parsed.
      snap.histograms[name] = std::move(h);
    }
  }
  return snap;
}

std::string SanitizeKeyForFilename(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ snapshot ops --

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& baseline,
                              const MetricsSnapshot& current) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : current.counters) {
    auto it = baseline.counters.find(name);
    if (it == baseline.counters.end()) {
      // Registered during the task: ship even at zero, so the parent's
      // snapshot lists the same counters a sequential run would.
      delta.counters[name] = value;
    } else if (value > it->second) {
      delta.counters[name] = value - it->second;
    }
  }
  for (const auto& [name, value] : current.gauges) {
    auto it = baseline.gauges.find(name);
    if (it == baseline.gauges.end() || it->second != value) {
      delta.gauges[name] = value;
    }
  }
  for (const auto& [name, h] : current.histograms) {
    auto it = baseline.histograms.find(name);
    if (it == baseline.histograms.end()) {
      delta.histograms[name] = h;  // new registration: ship even when empty
      continue;
    }
    if (it->second.bounds != h.bounds ||
        it->second.bucket_counts.size() != h.bucket_counts.size()) {
      if (h.count > 0) delta.histograms[name] = h;
      continue;
    }
    const MetricsSnapshot::HistogramData& base = it->second;
    MetricsSnapshot::HistogramData d;
    d.bounds = h.bounds;
    d.bucket_counts.resize(h.bucket_counts.size(), 0);
    bool any = false;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      uint64_t b = i < base.bucket_counts.size() ? base.bucket_counts[i] : 0;
      d.bucket_counts[i] = h.bucket_counts[i] > b ? h.bucket_counts[i] - b : 0;
      any = any || d.bucket_counts[i] > 0;
    }
    d.count = h.count > base.count ? h.count - base.count : 0;
    d.sum = h.sum - base.sum;
    if (any || d.count > 0) delta.histograms[name] = std::move(d);
  }
  return delta;
}

Result<MetricsSnapshot> MetricsSnapshotFromJson(const std::string& json) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(json));
  return SnapshotFromJsonValue(root);
}

// ------------------------------------------------------- worker telemetry --

std::string SerializeWorkerTelemetry(const WorkerTelemetry& telemetry) {
  std::ostringstream os;
  os << "{\"version\": " << telemetry.version << ", \"task_key\": ";
  AppendJsonString(&os, telemetry.task_key);
  os << ", \"attempt\": " << telemetry.attempt
     << ", \"pid\": " << telemetry.pid << ",\n\"metrics\": "
     << MetricsSnapshotToJson(telemetry.metrics) << ",\n\"spans\": [";
  bool first = true;
  for (const TraceEvent& e : telemetry.spans) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"id\": " << e.id << ", \"parent_id\": " << e.parent_id
       << ", \"depth\": " << e.depth << ", \"name\": ";
    AppendJsonString(&os, e.name);
    os << ", \"start_ns\": " << e.start_ns
       << ", \"duration_ns\": " << e.duration_ns
       << ", \"thread_id\": " << e.thread_id
       << ", \"track_id\": " << e.track_id << ", \"args\": [";
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) os << ", ";
      os << "[";
      AppendJsonString(&os, e.args[i].first);
      os << ", ";
      AppendJsonString(&os, e.args[i].second);
      os << "]";
    }
    os << "]}";
  }
  os << (first ? "]}" : "\n]}");
  os << "\n";
  return os.str();
}

Result<WorkerTelemetry> ParseWorkerTelemetry(const std::string& json) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(json));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument(
        "telemetry JSON: telemetry is not an object");
  }
  WorkerTelemetry t;
  if (const JsonValue* version = Find(root, "version")) {
    int64_t v = 0;
    FAIREM_ASSIGN_OR_RETURN(v, AsI64(*version, "version"));
    t.version = static_cast<int>(v);
  }
  if (t.version != 1) {
    return Status::InvalidArgument("telemetry JSON: unsupported version " +
                                   std::to_string(t.version));
  }
  if (const JsonValue* key = Find(root, "task_key")) t.task_key = key->scalar;
  if (const JsonValue* attempt = Find(root, "attempt")) {
    int64_t v = 0;
    FAIREM_ASSIGN_OR_RETURN(v, AsI64(*attempt, "attempt"));
    t.attempt = static_cast<int>(v);
  }
  if (const JsonValue* pid = Find(root, "pid")) {
    FAIREM_ASSIGN_OR_RETURN(t.pid, AsI64(*pid, "pid"));
  }
  const JsonValue* metrics = Find(root, "metrics");
  if (metrics == nullptr) {
    return Status::InvalidArgument("telemetry JSON: missing metrics");
  }
  FAIREM_ASSIGN_OR_RETURN(t.metrics, SnapshotFromJsonValue(*metrics));
  if (const JsonValue* spans = Find(root, "spans")) {
    for (const JsonValue& s : spans->items) {
      if (s.kind != JsonValue::kObject) {
        return Status::InvalidArgument("telemetry JSON: span not an object");
      }
      TraceEvent e;
      if (const JsonValue* v = Find(s, "id")) {
        FAIREM_ASSIGN_OR_RETURN(e.id, AsU64(*v, "span id"));
      }
      if (const JsonValue* v = Find(s, "parent_id")) {
        FAIREM_ASSIGN_OR_RETURN(e.parent_id, AsU64(*v, "span parent_id"));
      }
      if (const JsonValue* v = Find(s, "depth")) {
        int64_t depth = 0;
        FAIREM_ASSIGN_OR_RETURN(depth, AsI64(*v, "span depth"));
        e.depth = static_cast<int>(depth);
      }
      if (const JsonValue* v = Find(s, "name")) e.name = v->scalar;
      if (const JsonValue* v = Find(s, "start_ns")) {
        FAIREM_ASSIGN_OR_RETURN(e.start_ns, AsU64(*v, "span start_ns"));
      }
      if (const JsonValue* v = Find(s, "duration_ns")) {
        FAIREM_ASSIGN_OR_RETURN(e.duration_ns, AsU64(*v, "span duration_ns"));
      }
      if (const JsonValue* v = Find(s, "thread_id")) {
        FAIREM_ASSIGN_OR_RETURN(e.thread_id, AsU64(*v, "span thread_id"));
      }
      if (const JsonValue* v = Find(s, "track_id")) {
        FAIREM_ASSIGN_OR_RETURN(e.track_id, AsU64(*v, "span track_id"));
      }
      if (const JsonValue* v = Find(s, "args")) {
        for (const JsonValue& pair : v->items) {
          if (pair.items.size() != 2) {
            return Status::InvalidArgument("telemetry JSON: span arg shape");
          }
          e.args.emplace_back(pair.items[0].scalar, pair.items[1].scalar);
        }
      }
      t.spans.push_back(std::move(e));
    }
  }
  return t;
}

// ---------------------------------------------------------------- framing --

namespace {

constexpr size_t kMagicLen = 8;
constexpr size_t kFrameTypeLen = 4;
constexpr size_t kFrameHeaderLen = kFrameTypeLen + 16 + 1;

void AppendFrame(std::string* wire, const std::string& type,
                 const std::string& bytes) {
  char length[32];
  std::snprintf(length, sizeof(length), "%016zx", bytes.size());
  // Frame types are exactly 4 bytes on the wire; pad a short caller value
  // rather than read past it.
  char type4[kFrameTypeLen];
  for (size_t i = 0; i < kFrameTypeLen; ++i) {
    type4[i] = i < type.size() ? type[i] : '_';
  }
  wire->append(type4, kFrameTypeLen);
  wire->append(length, 16);
  wire->push_back('\n');
  wire->append(bytes);
}

/// Parses a frame header at `pos`. Returns false on malformed bytes (bad
/// length digits, missing '\n', type not 4 printable chars).
bool ParseFrameHeader(const std::string& wire, size_t pos, std::string* type,
                      uint64_t* length) {
  if (pos + kFrameHeaderLen > wire.size()) return false;
  for (size_t i = 0; i < kFrameTypeLen; ++i) {
    char c = wire[pos + i];
    if (c < 0x21 || c > 0x7e) return false;  // printable, non-space
  }
  *type = wire.substr(pos, kFrameTypeLen);
  uint64_t out = 0;
  for (size_t i = pos + kFrameTypeLen; i < pos + kFrameTypeLen + 16; ++i) {
    char c = wire[i];
    out <<= 4;
    if (c >= '0' && c <= '9') {
      out |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      out |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  if (wire[pos + kFrameHeaderLen - 1] != '\n') return false;
  *length = out;
  return true;
}

}  // namespace

std::string EncodeTelemetryWire(const std::vector<TelemetryFrame>& frames,
                                const std::string& payload) {
  size_t reserve = kMagicLen + (frames.size() + 1) * kFrameHeaderLen +
                   payload.size();
  for (const TelemetryFrame& f : frames) reserve += f.bytes.size();
  std::string wire;
  wire.reserve(reserve);
  wire.append(kTelemetryMagic, kMagicLen);
  for (const TelemetryFrame& f : frames) AppendFrame(&wire, f.type, f.bytes);
  AppendFrame(&wire, kFramePayload, payload);
  return wire;
}

TelemetryWireParse ParseTelemetryWire(const std::string& wire) {
  static Counter* unknown_frames = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.unknown_frames");
  TelemetryWireParse out;
  if (wire.size() < kMagicLen ||
      wire.compare(0, kMagicLen, kTelemetryMagic, kMagicLen) != 0) {
    out.payload = wire;
    return out;
  }
  size_t pos = kMagicLen;
  std::vector<TelemetryFrame> frames;
  std::string payload;
  bool saw_payload = false;
  bool truncated = false;
  while (pos < wire.size()) {
    std::string type;
    uint64_t length = 0;
    if (!ParseFrameHeader(wire, pos, &type, &length)) {
      // Malformed header. Before any complete frame this means "not our
      // framing at all" and the wire passes through whole; after one it is
      // mid-wire corruption/truncation — keep what already parsed.
      if (frames.empty() && !saw_payload) {
        out.payload = wire;
        return out;
      }
      truncated = true;
      break;
    }
    pos += kFrameHeaderLen;
    const size_t available = wire.size() - pos;
    if (type == kFramePayload) {
      // The payload frame is last by construction; a short one means the
      // worker died mid-write — take the bytes that made it.
      saw_payload = true;
      truncated = truncated || length > available || length < available;
      payload = wire.substr(pos, std::min<uint64_t>(length, available));
      pos = wire.size();
      break;
    }
    if (length > available) {  // truncated mid-frame
      truncated = true;
      break;
    }
    if (type != kFrameTelemetry && type != kFrameProfile) {
      unknown_frames->Increment();
    }
    frames.push_back({type, wire.substr(pos, length)});
    pos += length;
  }
  out.framed = true;
  out.truncated = truncated || (!saw_payload && pos >= wire.size());
  // A complete frame never parsed -> degrade to the unframed path (matches
  // the pre-typed-frame behaviour for a wire cut inside the first frame).
  if (frames.empty() && !saw_payload) {
    out.framed = false;
    out.frames.clear();
    out.payload = wire;
    return out;
  }
  out.frames = std::move(frames);
  out.payload = std::move(payload);
  return out;
}

std::string WrapPayloadWithTelemetry(const std::string& telemetry_json,
                                     const std::string& payload) {
  return EncodeTelemetryWire({{kFrameTelemetry, telemetry_json}}, payload);
}

TelemetrySplit SplitTelemetryPayload(const std::string& wire) {
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  TelemetrySplit out;
  if (!parsed.framed) {
    out.payload = wire;
    return out;
  }
  for (const TelemetryFrame& f : parsed.frames) {
    if (f.type == kFrameTelemetry) {
      out.has_telemetry = true;
      out.telemetry_json = f.bytes;
      break;
    }
  }
  out.payload = std::move(parsed.payload);
  return out;
}

// ---------------------------------------------------------------- sidecars --

std::string TelemetrySidecarPath(const std::string& dir,
                                 const std::string& task_key, int attempt) {
  return dir + "/" + SanitizeKeyForFilename(task_key) + ".attempt" +
         std::to_string(attempt) + ".telemetry.json";
}

Status WriteTelemetrySidecar(const std::string& dir,
                             const WorkerTelemetry& telemetry) {
  return WriteFileDurable(
      TelemetrySidecarPath(dir, telemetry.task_key, telemetry.attempt),
      SerializeWorkerTelemetry(telemetry));
}

Result<WorkerTelemetry> LoadTelemetrySidecarFile(const std::string& path) {
  FAIREM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseWorkerTelemetry(text);
}

std::string ProfileSidecarPath(const std::string& dir,
                               const std::string& task_key, int attempt) {
  return dir + "/" + SanitizeKeyForFilename(task_key) + ".attempt" +
         std::to_string(attempt) + ".profile.folded";
}

Status WriteProfileSidecar(const std::string& dir, const std::string& task_key,
                           int attempt, const std::string& folded_text) {
  return WriteFileDurable(ProfileSidecarPath(dir, task_key, attempt),
                          folded_text);
}

Result<std::string> LoadProfileSidecarFile(const std::string& path) {
  return ReadFileToString(path);
}

// ------------------------------------------------------------------ absorb --

void AbsorbWorkerTelemetry(const WorkerTelemetry& telemetry) {
  static Counter* deltas_merged = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.deltas_merged");
  static Counter* spans_imported = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.spans_imported");
  MetricsRegistry::Global().Merge(telemetry.metrics);
  deltas_merged->Increment();
  Tracer& tracer = Tracer::Global();
  for (TraceEvent e : telemetry.spans) {
    if (e.track_id == 0 && telemetry.pid > 0) {
      e.track_id = static_cast<uint64_t>(telemetry.pid);
    }
    tracer.RecordImported(std::move(e));
    spans_imported->Increment();
  }
}

// ---------------------------------------------------------------- progress --

ProgressReporter::ProgressReporter(size_t total_cells, int jobs,
                                   double min_interval_seconds,
                                   bool emit_stderr)
    : jobs_(jobs > 0 ? jobs : 1),
      min_interval_seconds_(min_interval_seconds),
      emit_stderr_(emit_stderr),
      cell_seconds_(MetricsRegistry::Global().GetHistogram(
          "fairem.progress.cell_seconds")),
      last_emit_(std::chrono::steady_clock::now()) {
  MetricsRegistry::Global()
      .GetGauge("fairem.progress.cells_total")
      ->Set(static_cast<double>(total_cells));
}

double ProgressReporter::EtaSeconds(const ProgressSnapshot& snap) const {
  uint64_t count = cell_seconds_->count();
  if (count == 0 || snap.total <= snap.done) {
    return snap.total <= snap.done ? 0.0 : -1.0;
  }
  double mean = cell_seconds_->sum() / static_cast<double>(count);
  double remaining = static_cast<double>(snap.total - snap.done);
  return mean * remaining / static_cast<double>(jobs_);
}

std::string ProgressReporter::FormatLine(const ProgressSnapshot& snap,
                                         double eta_seconds) {
  std::ostringstream os;
  os << "grid " << snap.done << "/" << snap.total << " done, " << snap.running
     << " running, " << snap.retrying << " retrying, " << snap.failed
     << " failed, eta ";
  if (eta_seconds < 0) {
    os << "?";
  } else {
    os << FormatDouble(eta_seconds, 1) << "s";
  }
  return os.str();
}

void ProgressReporter::Update(const ProgressSnapshot& snap, bool force) {
  if (snap.last_cell_seconds >= 0) {
    cell_seconds_->Observe(snap.last_cell_seconds);
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("fairem.progress.cells_total")
      ->Set(static_cast<double>(snap.total));
  reg.GetGauge("fairem.progress.cells_done")
      ->Set(static_cast<double>(snap.done));
  reg.GetGauge("fairem.progress.cells_running")
      ->Set(static_cast<double>(snap.running));
  reg.GetGauge("fairem.progress.cells_retrying")
      ->Set(static_cast<double>(snap.retrying));
  reg.GetGauge("fairem.progress.cells_failed")
      ->Set(static_cast<double>(snap.failed));
  double eta = EtaSeconds(snap);
  reg.GetGauge("fairem.progress.eta_seconds")->Set(eta);
  if (!emit_stderr_) return;
  auto now = std::chrono::steady_clock::now();
  double since_last =
      std::chrono::duration<double>(now - last_emit_).count();
  if (!force && emitted_any_ && since_last < min_interval_seconds_) return;
  emitted_any_ = true;
  last_emit_ = now;
  std::string line = FormatLine(snap, eta);
  std::fprintf(stderr, "[fairem] %s\n", line.c_str());
  std::fflush(stderr);
}

}  // namespace fairem
