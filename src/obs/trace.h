#ifndef FAIREM_OBS_TRACE_H_
#define FAIREM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/profiler.h"
#include "src/util/result.h"

namespace fairem {

/// One completed span. Ids are unique per process; parent_id is 0 for root
/// spans. Times are nanoseconds on the monotonic clock, relative to the
/// tracer's epoch (its construction).
struct TraceEvent {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  int depth = 0;  // 0 = root
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t thread_id = 0;
  /// Display track for multi-process traces: 0 means "this process" and
  /// renders as Chrome pid 1; spans imported from a worker carry the worker
  /// pid so chrome://tracing shows one track per worker.
  uint64_t track_id = 0;
  /// Span arguments, shown in the chrome://tracing detail pane.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects spans when enabled. Disabled (the default) the Span constructor
/// is a single relaxed atomic load — no clock reads, no allocation — so
/// instrumentation can stay in hot paths permanently.
///
/// Nesting is tracked per thread: a span started while another is open on
/// the same thread records it as its parent, which is what makes the
/// exported trace show datagen → blocking → … as a tree.
class Tracer {
 public:
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded event (enabled state is unchanged).
  void Clear();

  /// Copy of all completed events, in completion order (children before
  /// their parents).
  std::vector<TraceEvent> Events() const;

  /// Number of completed events so far (a cheap watermark for EventsSince).
  size_t EventCount() const;

  /// Events recorded at or after watermark `start` (an earlier EventCount()
  /// value). Workers use this to ship only the spans completed during one
  /// task, not the whole inherited history.
  std::vector<TraceEvent> EventsSince(size_t start) const;

  /// Appends an externally produced span (e.g. one shipped from a worker
  /// process) verbatim — id, times, and track_id are preserved, not
  /// reassigned, since worker clocks share the parent's epoch across fork.
  /// Recorded even when the tracer is disabled: the worker already paid for
  /// the span, so the parent keeps it.
  void RecordImported(TraceEvent event);

  /// Chrome trace_event JSON ("ph":"X" complete events); load the file via
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Per-span-name aggregate — name, call count, total/mean wall seconds —
  /// as an aligned text table, for end-of-run stderr summaries.
  std::string FlatSummary() const;

  /// Nanoseconds since the tracer's epoch on the monotonic clock.
  uint64_t NowNs() const;

 private:
  friend class Span;

  void Record(TraceEvent event);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records one TraceEvent on the global tracer from construction
/// to destruction. Also usable purely as a monotonic timer: pass
/// `elapsed_seconds_out` and the measured duration is written there on
/// destruction whether or not tracing is enabled — harness timings and
/// trace timings then come from the same clock read and can never disagree.
///
/// While the sampling profiler is active (DESIGN.md §13) the span also
/// pushes its name onto the thread's stage stack — every profiler sample
/// taken inside attributes to this span — and snapshots /proc resource
/// usage at both boundaries to export per-span RSS/io deltas.
class Span {
 public:
  explicit Span(std::string name, double* elapsed_seconds_out = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value argument (no-op when tracing is disabled).
  void AddArg(const std::string& key, std::string value);

  /// Seconds elapsed since construction (monotonic clock).
  double ElapsedSeconds() const;

 private:
  bool recording_ = false;
  bool timing_ = false;
  bool profiling_ = false;
  double* elapsed_out_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  TraceEvent event_;
  ProfSpanResources prof_start_;
};

/// Monotonic-clock scope timer: writes elapsed seconds to `*out` on
/// destruction. The non-tracing sibling of Span for call sites that only
/// need a number.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* out) : out_(out) {
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { *out_ = ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  double* out_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fairem

#endif  // FAIREM_OBS_TRACE_H_
