#ifndef FAIREM_OBS_TRACE_H_
#define FAIREM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/profiler.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace fairem {

/// Identity of one distributed query trace (DESIGN.md §16): a 128-bit trace
/// id shared by every hop (client, router, daemon, worker) plus the span id
/// of the sender's enclosing span, so the receiver parents its own spans
/// under the caller's. Carried as optional JSON fields on QREQ; a zero
/// trace id means "untraced" and every hop behaves exactly as before.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t parent_span_id = 0;
  bool sampled = true;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  /// 32 lowercase hex chars, the wire and log form of the trace id.
  std::string TraceIdHex() const;
};

/// Fresh nonzero 128-bit trace id (clock + pid + sequence, hashed), root
/// context: parent_span_id 0, sampled.
TraceContext NewTraceContext();

/// Parses a 32-hex-char trace id into hi/lo. Returns false — leaving the
/// outputs zero, i.e. "untraced" — on any malformed input; a corrupt trace
/// field must degrade, never error a query.
bool ParseTraceIdHex(const std::string& hex, uint64_t* hi, uint64_t* lo);

/// Process-unique nonzero span id for cross-process spans. Unlike the
/// Tracer's small sequential ids these are hashed with the pid, so ids
/// minted independently by client, router, daemon, and worker supervisors
/// never collide within one trace.
uint64_t NewSpanId();

/// Wall-clock microseconds since the Unix epoch — the shared timebase of
/// cross-process spans (every fleet process is on one machine/clock).
int64_t UnixMicrosNow();

/// One completed span of a distributed trace, in wire form: absolute
/// wall-clock times and globally unique ids (NewSpanId), so spans recorded
/// by different processes merge into a single timeline with no epoch or id
/// translation. Shipped back to the client piggybacked on QRSP.
struct WireSpan {
  std::string name;     // taxonomy: "router.call", "daemon.queue", ...
  std::string process;  // "client" | "router" | "daemon" | "worker"
  int64_t pid = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = trace root
  int64_t start_unix_us = 0;
  int64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// JSON array of span objects (the QRSP "spans" field and the slow-query
/// log "spans" field share this shape).
std::string SerializeWireSpans(const std::vector<WireSpan>& spans);

/// Tolerant inverse: entries that are not objects, lack a name, or lack a
/// nonzero span_id are dropped (and counted in
/// fairem.trace.malformed_spans); a malformed annotation is dropped from
/// its span. A trace is advisory — a bad span must never fail the query
/// that carried it.
std::vector<WireSpan> ParseWireSpans(const JsonValue& array);

/// ParseWireSpans over raw JSON text; a document that fails to parse at
/// all yields the empty vector.
std::vector<WireSpan> ParseWireSpansJson(const std::string& json);

/// One completed span. Ids are unique per process; parent_id is 0 for root
/// spans. Times are nanoseconds on the monotonic clock, relative to the
/// tracer's epoch (its construction).
struct TraceEvent {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  int depth = 0;  // 0 = root
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t thread_id = 0;
  /// Display track for multi-process traces: 0 means "this process" and
  /// renders as Chrome pid 1; spans imported from a worker carry the worker
  /// pid so chrome://tracing shows one track per worker.
  uint64_t track_id = 0;
  /// Span arguments, shown in the chrome://tracing detail pane.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects spans when enabled. Disabled (the default) the Span constructor
/// is a single relaxed atomic load — no clock reads, no allocation — so
/// instrumentation can stay in hot paths permanently.
///
/// Nesting is tracked per thread: a span started while another is open on
/// the same thread records it as its parent, which is what makes the
/// exported trace show datagen → blocking → … as a tree.
class Tracer {
 public:
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded event (enabled state is unchanged).
  void Clear();

  /// Copy of all completed events, in completion order (children before
  /// their parents).
  std::vector<TraceEvent> Events() const;

  /// Number of completed events so far (a cheap watermark for EventsSince).
  size_t EventCount() const;

  /// Events recorded at or after watermark `start` (an earlier EventCount()
  /// value). Workers use this to ship only the spans completed during one
  /// task, not the whole inherited history.
  std::vector<TraceEvent> EventsSince(size_t start) const;

  /// Appends an externally produced span (e.g. one shipped from a worker
  /// process) verbatim — id, times, and track_id are preserved, not
  /// reassigned, since worker clocks share the parent's epoch across fork.
  /// Recorded even when the tracer is disabled: the worker already paid for
  /// the span, so the parent keeps it.
  void RecordImported(TraceEvent event);

  /// Imports a distributed trace's wire spans: each becomes a TraceEvent on
  /// the track of its originating pid (labelled "fairem <process> <pid>"),
  /// with wall-clock times mapped onto this tracer's epoch so they line up
  /// with locally recorded spans in the Chrome export.
  void RecordWireSpans(const std::vector<WireSpan>& spans);

  /// Names a display track in the Chrome export (defaults: track 1 is
  /// "fairem", any other is "fairem worker <track>").
  void SetTrackLabel(uint64_t track, std::string label);

  /// Wall-clock Unix microseconds corresponding to start_ns == 0.
  int64_t EpochUnixMicros() const { return epoch_unix_us_; }

  /// Chrome trace_event JSON ("ph":"X" complete events); load the file via
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Per-span-name aggregate — name, call count, total/mean wall seconds —
  /// as an aligned text table, for end-of-run stderr summaries.
  std::string FlatSummary() const;

  /// Nanoseconds since the tracer's epoch on the monotonic clock.
  uint64_t NowNs() const;

 private:
  friend class Span;

  void Record(TraceEvent event);

  std::chrono::steady_clock::time_point epoch_;
  int64_t epoch_unix_us_ = 0;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<uint64_t, std::string> track_labels_;
};

/// RAII span: records one TraceEvent on the global tracer from construction
/// to destruction. Also usable purely as a monotonic timer: pass
/// `elapsed_seconds_out` and the measured duration is written there on
/// destruction whether or not tracing is enabled — harness timings and
/// trace timings then come from the same clock read and can never disagree.
///
/// While the sampling profiler is active (DESIGN.md §13) the span also
/// pushes its name onto the thread's stage stack — every profiler sample
/// taken inside attributes to this span — and snapshots /proc resource
/// usage at both boundaries to export per-span RSS/io deltas.
class Span {
 public:
  explicit Span(std::string name, double* elapsed_seconds_out = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value argument (no-op when tracing is disabled).
  void AddArg(const std::string& key, std::string value);

  /// Seconds elapsed since construction (monotonic clock).
  double ElapsedSeconds() const;

 private:
  bool recording_ = false;
  bool timing_ = false;
  bool profiling_ = false;
  double* elapsed_out_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  TraceEvent event_;
  ProfSpanResources prof_start_;
};

/// Monotonic-clock scope timer: writes elapsed seconds to `*out` on
/// destruction. The non-tracing sibling of Span for call sites that only
/// need a number.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* out) : out_(out) {
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { *out_ = ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  double* out_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fairem

#endif  // FAIREM_OBS_TRACE_H_
