#ifndef FAIREM_OBS_BENCHDIFF_H_
#define FAIREM_OBS_BENCHDIFF_H_

#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/result.h"

namespace fairem {

// ---------------------------------------------------------------------------
// `fairem benchdiff`: compare two metrics snapshots (BENCH_*.json files)
// and gate CI on named regressions.

/// One --fail_on clause. Grammar: `<metric><op><threshold>[x|abs]` with op
/// '>' or '<'. The suffix picks the comparand: `x` gates on the ratio
/// new/old, `abs` on the new value itself (the old snapshot is ignored —
/// budget-style ceilings and floors), no suffix on the delta (new − old).
///   "fairem.matcher.predict_seconds.mean>1.10x"  fails if new/old > 1.10
///   "fairem.audit.audits_failed>0"               fails if delta > 0
///   "fairem.audit.cells_evaluated<0"             fails if the count shrank
///   "fairem.proc.peak_rss_mb>512abs"             fails if new value > 512
///   "fairem.profile.samples<100abs"              fails if new value < 100
struct FailOnSpec {
  std::string metric;
  char op = '>';
  double threshold = 0.0;
  bool ratio = false;
  bool absolute = false;
  std::string raw;
};

Result<FailOnSpec> ParseFailOnSpec(const std::string& spec);

/// Snapshot as flat name→value pairs, the address space --fail_on specs
/// use: counters and gauges under their own name, histograms expanded to
/// `<name>.mean`, `.count`, `.sum`, `.p50`, `.p95`, `.p99`.
std::map<std::string, double> FlattenSnapshot(const MetricsSnapshot& snap);

struct BenchDiffRow {
  std::string metric;
  bool in_old = false;
  bool in_new = false;
  double old_value = 0.0;
  double new_value = 0.0;
  double delta = 0.0;  // new − old
  double ratio = 1.0;  // new/old; 1 when both 0, +inf when only old is 0
};

/// Union of both snapshots' flattened metrics, sorted by name.
std::vector<BenchDiffRow> DiffSnapshotsForBench(const MetricsSnapshot& old_snap,
                                                const MetricsSnapshot& new_snap);

/// Aligned text table of `rows`. With `changed_only`, rows whose delta is
/// exactly zero are dropped (the common case for a quick regression scan).
std::string RenderBenchDiffTable(const std::vector<BenchDiffRow>& rows,
                                 bool changed_only);

/// Evaluates `specs` against the two flattened snapshots. Returns one
/// human-readable violation line per failed clause (empty = gate passes);
/// a spec naming a metric absent from the *new* snapshot is an error, not
/// a violation — a renamed metric must not silently pass the gate.
Result<std::vector<std::string>> CheckFailOnSpecs(
    const std::map<std::string, double>& old_flat,
    const std::map<std::string, double>& new_flat,
    const std::vector<FailOnSpec>& specs);

}  // namespace fairem

#endif  // FAIREM_OBS_BENCHDIFF_H_
