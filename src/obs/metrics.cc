#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/obs/log.h"
#include "src/util/durable_file.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// JSON string escaping for metric names (quotes/backslashes/control bytes).
void AppendJsonString(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

/// Doubles must stay valid JSON: non-finite values serialise as 0.
void AppendJsonDouble(std::ostringstream* os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  *os << tmp.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FAIREM_CHECK(!bounds_.empty(), "histogram needs at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    FAIREM_CHECK(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

void Histogram::ObserveWithExemplar(double v, const std::string& trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
  if (trace_id.empty()) return;
  if (exemplars_.empty()) exemplars_.resize(counts_.size());
  HistogramExemplar& slot = exemplars_[i];
  if (slot.trace_id.empty() || v >= slot.value) {
    slot.value = v;
    slot.trace_id = trace_id;
  }
}

std::vector<HistogramExemplar> Histogram::exemplars() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (exemplars_.empty()) {
    return std::vector<HistogramExemplar>(counts_.size());
  }
  return exemplars_;
}

void Histogram::MergeExemplar(size_t bucket, double value,
                              const std::string& trace_id) {
  if (trace_id.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (bucket >= counts_.size()) return;
  if (exemplars_.empty()) exemplars_.resize(counts_.size());
  HistogramExemplar& slot = exemplars_[bucket];
  if (slot.trace_id.empty() || value >= slot.value) {
    slot.value = value;
    slot.trace_id = trace_id;
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.assign(bounds_.size() + 1, 0);
  exemplars_.clear();
  count_ = 0;
  sum_ = 0.0;
}

bool Histogram::MergeCounts(const std::vector<uint64_t>& bucket_counts,
                            uint64_t count, double sum) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bucket_counts.size() != counts_.size()) return false;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += bucket_counts[i];
  count_ += count;
  sum_ += sum;
  return true;
}

double Histogram::Quantile(double q) const {
  MetricsSnapshot::HistogramData data;
  data.bounds = bounds_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    data.bucket_counts = counts_;
    data.count = count_;
    data.sum = sum_;
  }
  return data.Quantile(q);
}

double MetricsSnapshot::HistogramData::Mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

HistogramExemplar MetricsSnapshot::HistogramData::TopExemplar() const {
  HistogramExemplar top;
  for (const HistogramExemplar& e : exemplars) {
    if (e.trace_id.empty()) continue;
    if (top.trace_id.empty() || e.value > top.value) top = e;
  }
  return top;
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  if (count == 0 || bounds.empty() ||
      bucket_counts.size() != bounds.size() + 1) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (cumulative + in_bucket < rank || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    // The overflow bucket has no upper edge; clamp to the last bound (the
    // estimate cannot exceed what the buckets can resolve).
    if (i == bounds.size()) return bounds.back();
    const double hi = bounds[i];
    // The first bucket interpolates from 0 for all-positive bounds (the
    // latency case); with non-positive bounds there is no usable lower
    // edge, so it degrades to the bucket's upper bound.
    const double lo = i == 0 ? (bounds[0] > 0.0 ? 0.0 : bounds[0])
                             : bounds[i - 1];
    return lo + (hi - lo) * ((rank - cumulative) / in_bucket);
  }
  return bounds.back();
}

std::vector<double> DefaultLatencyBounds() {
  return {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.bucket_counts = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    // Exemplars ride along only when some were recorded, so snapshots of
    // untraced runs stay byte-identical to pre-exemplar ones.
    std::vector<HistogramExemplar> exemplars = h->exemplars();
    for (const HistogramExemplar& e : exemplars) {
      if (!e.trace_id.empty()) {
        data.exemplars = std::move(exemplars);
        break;
      }
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::Merge(const MetricsSnapshot& delta) {
  static Counter* bounds_mismatches = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.merge_bounds_mismatches");
  for (const auto& [name, value] : delta.counters) {
    GetCounter(name)->Increment(value);
  }
  for (const auto& [name, value] : delta.gauges) {
    GetGauge(name)->Set(value);
  }
  for (const auto& [name, h] : delta.histograms) {
    if (h.bucket_counts.size() != h.bounds.size() + 1) {
      bounds_mismatches->Increment();
      FAIREM_LOG(WARN) << "telemetry merge: malformed histogram delta"
                       << LogKv("histogram", name);
      continue;
    }
    Histogram* target = GetHistogram(name, h.bounds);
    if (target->bounds() == h.bounds) {
      for (size_t i = 0; i < h.exemplars.size(); ++i) {
        target->MergeExemplar(i, h.exemplars[i].value,
                              h.exemplars[i].trace_id);
      }
    }
    if (target->bounds() != h.bounds ||
        !target->MergeCounts(h.bucket_counts, h.count, h.sum)) {
      // Bounds disagreement means two processes registered the histogram
      // differently; dropping the delta (loudly) beats corrupting buckets.
      bounds_mismatches->Increment();
      FAIREM_LOG(WARN) << "telemetry merge: histogram bounds mismatch, "
                          "dropping delta"
                       << LogKv("histogram", name)
                       << LogKv("delta_bounds", h.bounds.size())
                       << LogKv("registered_bounds", target->bounds().size());
    }
  }
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n    " : ",\n    ");
    AppendJsonString(&os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n    " : ",\n    ");
    AppendJsonString(&os, name);
    os << ": ";
    AppendJsonDouble(&os, value);
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "\n    " : ",\n    ");
    AppendJsonString(&os, name);
    os << ": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ", ";
      AppendJsonDouble(&os, h.bounds[i]);
    }
    os << "], \"bucket_counts\": [";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << h.bucket_counts[i];
    }
    os << "], \"count\": " << h.count << ", \"sum\": ";
    AppendJsonDouble(&os, h.sum);
    // Derived stats, recomputed (not parsed back) on load: humans and
    // benchdiff get quantiles without re-deriving them from buckets.
    os << ", \"mean\": ";
    AppendJsonDouble(&os, h.Mean());
    os << ", \"p50\": ";
    AppendJsonDouble(&os, h.Quantile(0.50));
    os << ", \"p95\": ";
    AppendJsonDouble(&os, h.Quantile(0.95));
    os << ", \"p99\": ";
    AppendJsonDouble(&os, h.Quantile(0.99));
    // Optional per-bucket exemplars (only buckets that have one). Readers
    // that predate exemplars ignore the key.
    bool any_exemplar = false;
    for (const HistogramExemplar& e : h.exemplars) {
      any_exemplar = any_exemplar || !e.trace_id.empty();
    }
    if (any_exemplar) {
      os << ", \"exemplars\": [";
      bool first_ex = true;
      for (size_t i = 0; i < h.exemplars.size(); ++i) {
        if (h.exemplars[i].trace_id.empty()) continue;
        if (!first_ex) os << ", ";
        first_ex = false;
        os << "{\"bucket\": " << i << ", \"value\": ";
        AppendJsonDouble(&os, h.exemplars[i].value);
        os << ", \"trace_id\": ";
        AppendJsonString(&os, h.exemplars[i].trace_id);
        os << "}";
      }
      os << "]";
    }
    os << "}";
    first = false;
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
  return os.str();
}

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(keep ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

namespace {

/// Prometheus floats: plain shortest-round-trip decimal, NaN/Inf excluded
/// upstream by the snapshot (AppendJsonDouble parity).
std::string PromDouble(double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string MetricsSnapshotToPrometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " " << PromDouble(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i < h.bucket_counts.size()) cumulative += h.bucket_counts[i];
      os << prom << "_bucket{le=\"" << PromDouble(h.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << prom << "_sum " << PromDouble(h.sum) << "\n";
    os << prom << "_count " << h.count << "\n";
  }
  return os.str();
}

Result<MetricsFormat> ParseMetricsFormat(const std::string& name) {
  const std::string lower = ToLowerAscii(name);
  if (lower == "json") return MetricsFormat::kJson;
  if (lower == "prom" || lower == "prometheus") return MetricsFormat::kProm;
  return Status::InvalidArgument("unknown metrics format '" + name +
                                 "' (expected json or prom)");
}

std::string MetricsRegistry::ToJson() const {
  return MetricsSnapshotToJson(Snapshot());
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  return WriteFile(path, MetricsFormat::kJson);
}

Status MetricsRegistry::WriteFile(const std::string& path,
                                  MetricsFormat format) const {
  MetricsSnapshot snap = Snapshot();
  const std::string body = format == MetricsFormat::kProm
                               ? MetricsSnapshotToPrometheus(snap)
                               : MetricsSnapshotToJson(snap);
  // Durable like checkpoint Save: a metrics snapshot is read back by
  // benchdiff and CI; a SIGKILL mid-write must not leave a torn file.
  return WriteFileDurable(path, body);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace fairem
