#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/logging.h"

namespace fairem {
namespace {

/// JSON string escaping for metric names (quotes/backslashes/control bytes).
void AppendJsonString(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

/// Doubles must stay valid JSON: non-finite values serialise as 0.
void AppendJsonDouble(std::ostringstream* os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  *os << tmp.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FAIREM_CHECK(!bounds_.empty(), "histogram needs at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    FAIREM_CHECK(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = 0.0;
}

std::vector<double> DefaultLatencyBounds() {
  return {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.bucket_counts = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n    " : ",\n    ");
    AppendJsonString(&os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n    " : ",\n    ");
    AppendJsonString(&os, name);
    os << ": ";
    AppendJsonDouble(&os, value);
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "\n    " : ",\n    ");
    AppendJsonString(&os, name);
    os << ": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ", ";
      AppendJsonDouble(&os, h.bounds[i]);
    }
    os << "], \"bucket_counts\": [";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << h.bucket_counts[i];
    }
    os << "], \"count\": " << h.count << ", \"sum\": ";
    AppendJsonDouble(&os, h.sum);
    os << "}";
    first = false;
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
  return os.str();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToJson();
  if (!out) return Status::IOError("failed writing metrics to '" + path + "'");
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace fairem
