#include "src/obs/slowlog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/json.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

Counter* WrittenCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("fairem.slowlog.written");
  return counter;
}

Counter* SuppressedCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("fairem.slowlog.suppressed");
  return counter;
}

}  // namespace

std::string SerializeSlowQueryEvent(const SlowQueryEvent& event,
                                    double slow_ms, int64_t ts_unix_us) {
  std::ostringstream os;
  os << "{\"ts_unix_us\":" << ts_unix_us << ",\"process\":";
  AppendJsonString(&os, event.process);
  os << ",\"trace_id\":";
  AppendJsonString(&os, event.trace_id);
  os << ",\"id\":" << event.id << ",\"op\":";
  AppendJsonString(&os, event.op);
  os << ",\"key\":";
  AppendJsonString(&os, event.key);
  os << ",\"status\":";
  AppendJsonString(&os, event.status);
  os << ",\"total_ms\":" << FormatDouble(event.total_ms, 3)
     << ",\"slow_ms\":" << FormatDouble(slow_ms, 3)
     << ",\"spans\":" << SerializeWireSpans(event.spans) << "}";
  return os.str();
}

Result<SlowQueryEvent> ParseSlowQueryEvent(const std::string& line,
                                           int64_t* ts_unix_us,
                                           double* slow_ms) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(line));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("slowlog line is not a JSON object");
  }
  SlowQueryEvent event;
  // Every field individually tolerant: a missing or mistyped one keeps its
  // default so logs from other versions still render.
  if (const JsonValue* v = JsonFind(root, "ts_unix_us")) {
    Result<int64_t> ts = JsonAsI64(*v, "ts_unix_us");
    if (ts.ok() && ts_unix_us != nullptr) *ts_unix_us = *ts;
  }
  if (const JsonValue* v = JsonFind(root, "slow_ms")) {
    Result<double> ms = JsonAsDouble(*v, "slow_ms");
    if (ms.ok() && slow_ms != nullptr) *slow_ms = *ms;
  }
  if (const JsonValue* v = JsonFind(root, "process")) {
    Result<std::string> s = JsonAsString(*v, "process");
    if (s.ok()) event.process = std::move(*s);
  }
  if (const JsonValue* v = JsonFind(root, "trace_id")) {
    Result<std::string> s = JsonAsString(*v, "trace_id");
    if (s.ok()) event.trace_id = std::move(*s);
  }
  if (const JsonValue* v = JsonFind(root, "id")) {
    Result<uint64_t> id = JsonAsU64(*v, "id");
    if (id.ok()) event.id = *id;
  }
  if (const JsonValue* v = JsonFind(root, "op")) {
    Result<std::string> s = JsonAsString(*v, "op");
    if (s.ok()) event.op = std::move(*s);
  }
  if (const JsonValue* v = JsonFind(root, "key")) {
    Result<std::string> s = JsonAsString(*v, "key");
    if (s.ok()) event.key = std::move(*s);
  }
  if (const JsonValue* v = JsonFind(root, "status")) {
    Result<std::string> s = JsonAsString(*v, "status");
    if (s.ok()) event.status = std::move(*s);
  }
  if (const JsonValue* v = JsonFind(root, "total_ms")) {
    Result<double> ms = JsonAsDouble(*v, "total_ms");
    if (ms.ok()) event.total_ms = *ms;
  }
  if (const JsonValue* v = JsonFind(root, "spans")) {
    event.spans = ParseWireSpans(*v);
  }
  return event;
}

SlowQueryLogger::SlowQueryLogger(std::string path, double slow_ms,
                                 double max_per_s)
    : path_(std::move(path)),
      slow_ms_(slow_ms),
      max_per_s_(max_per_s > 0.0 ? max_per_s : 5.0) {}

SlowQueryLogger::~SlowQueryLogger() {
  if (fd_ >= 0) ::close(fd_);
}

void SlowQueryLogger::MaybeLog(const SlowQueryEvent& event, double now_s) {
  if (!enabled() || event.total_ms < slow_ms_) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Token bucket, capacity 2x the refill rate: steady state writes at most
  // max_per_s lines per second, with a small burst allowance so the first
  // queries of an incident all land.
  if (!refilled_once_) {
    tokens_ = std::max(1.0, 2.0 * max_per_s_);
    last_refill_s_ = now_s;
    refilled_once_ = true;
  } else {
    tokens_ = std::min(std::max(1.0, 2.0 * max_per_s_),
                       tokens_ + (now_s - last_refill_s_) * max_per_s_);
    last_refill_s_ = now_s;
  }
  if (tokens_ < 1.0) {
    SuppressedCounter()->Increment();
    return;
  }
  tokens_ -= 1.0;
  if (fd_ < 0 && !open_failed_) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
      open_failed_ = true;  // complain once, not per slow query
      FAIREM_LOG(WARN) << "slowlog: cannot open log file"
                       << LogKv("path", path_)
                       << LogKv("error", std::strerror(errno));
    }
  }
  if (fd_ < 0) return;
  std::string line =
      SerializeSlowQueryEvent(event, slow_ms_, UnixMicrosNow());
  line.push_back('\n');
  // O_APPEND makes the write atomic with respect to other appenders (the
  // router and a daemon may share one file); a short write on a full disk
  // is tolerated — the reader skips lines that fail to parse.
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<size_t>(n);
  }
  WrittenCounter()->Increment();
}

}  // namespace fairem
