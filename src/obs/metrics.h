#ifndef FAIREM_OBS_METRICS_H_
#define FAIREM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Monotonically increasing event count. Lock-free; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a rate or a size observed this run).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// one implicit overflow bucket. Also tracks sum and count so means survive
/// the bucketing.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Latency-style default bounds (seconds): 1ms … 30s, roughly x3 apart.
std::vector<double> DefaultLatencyBounds();

/// A point-in-time copy of every metric, convenient for tests and export.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, HistogramData> histograms;
};

/// Process-wide registry of named metrics. Naming convention:
/// `fairem.<subsystem>.<metric>`, e.g. "fairem.audit.cells_evaluated".
///
/// Get* registers on first use and returns a stable pointer — hot paths
/// should look a metric up once (function-local static) and increment the
/// pointer thereafter. Metrics are never unregistered; Reset() zeroes values
/// but keeps every pointer valid.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used only on first registration; empty means
  /// DefaultLatencyBounds().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — stable key
  /// order (std::map), so diffs of successive BENCH_*.json files are clean.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJsonFile(const std::string& path) const;

  /// Zeroes every metric's value; registered names/pointers survive.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fairem

#endif  // FAIREM_OBS_METRICS_H_
