#ifndef FAIREM_OBS_METRICS_H_
#define FAIREM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Monotonically increasing event count. Lock-free; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a rate or a size observed this run).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One bucket's exemplar: the largest observation that landed in the
/// bucket since the last Reset, and the trace id that produced it. Links a
/// regressed latency bucket to a concrete slow trace (DESIGN.md §16).
struct HistogramExemplar {
  double value = 0.0;
  std::string trace_id;  // 32-hex trace id; empty = no exemplar recorded
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// one implicit overflow bucket. Also tracks sum and count so means survive
/// the bucketing.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Observe, additionally keeping `trace_id` as the bucket's exemplar when
  /// this observation is the largest the bucket has seen. An empty trace_id
  /// degrades to plain Observe.
  void ObserveWithExemplar(double v, const std::string& trace_id);

  /// bounds().size() + 1 entries, aligned with bucket_counts(); entries
  /// with an empty trace_id carry no exemplar.
  std::vector<HistogramExemplar> exemplars() const;

  /// Keep-max merge of one bucket's exemplar (the cross-process merge
  /// path); out-of-range buckets and empty trace ids are ignored.
  void MergeExemplar(size_t bucket, double value, const std::string& trace_id);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const;
  void Reset();

  /// Adds another histogram's data bucket-wise (the cross-process merge
  /// primitive). `bucket_counts` must have bounds().size() + 1 entries —
  /// callers check bounds equality first; a size mismatch returns false and
  /// leaves the histogram untouched.
  bool MergeCounts(const std::vector<uint64_t>& bucket_counts, uint64_t count,
                   double sum);

  /// Live quantile estimate over the current buckets — the same
  /// interpolation as MetricsSnapshot::HistogramData::Quantile. Used by
  /// adaptive policies (the router's hedge delay tracks this histogram's
  /// p95); takes the mutex once, so fine at event-loop rates but not in a
  /// per-observation hot path.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  std::vector<HistogramExemplar> exemplars_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Latency-style default bounds (seconds): 1ms … 30s, roughly x3 apart.
std::vector<double> DefaultLatencyBounds();

/// A point-in-time copy of every metric, convenient for tests and export.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;
    /// Empty (no exemplars recorded) or bucket_counts.size() entries.
    std::vector<HistogramExemplar> exemplars;
    uint64_t count = 0;
    double sum = 0.0;

    /// The highest-value exemplar across buckets, or one with an empty
    /// trace_id when none were recorded.
    HistogramExemplar TopExemplar() const;

    /// sum / count, or 0 when empty.
    double Mean() const;

    /// The q-quantile (q in [0, 1]) estimated by linear interpolation
    /// within buckets, Prometheus histogram_quantile style: the first
    /// bucket interpolates from 0 (or from bounds[0] when it is <= 0), and
    /// ranks landing in the overflow bucket clamp to the last bound. 0 when
    /// empty.
    double Quantile(double q) const;
  };
  std::map<std::string, HistogramData> histograms;
};

/// Snapshot serialization, shared by MetricsRegistry::ToJson and the
/// cross-process telemetry wire format. Histograms carry derived "mean",
/// "p50", "p95", "p99" keys alongside the raw buckets so humans and
/// `fairem benchdiff` get latency quantiles without recomputing.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snap);

/// Prometheus text exposition of a snapshot: names sanitized ('.' and any
/// other non-[a-zA-Z0-9_:] byte become '_'), a `# TYPE` line per metric,
/// and histograms expanded to cumulative `_bucket{le="..."}` series (with
/// the `+Inf` bucket) plus `_sum` and `_count`.
std::string MetricsSnapshotToPrometheus(const MetricsSnapshot& snap);

/// Prometheus metric-name sanitization: '.' -> '_', anything outside
/// [a-zA-Z0-9_:] -> '_', and a leading digit gets a '_' prefix.
std::string PrometheusName(const std::string& name);

/// Snapshot file formats accepted by --metrics_format.
enum class MetricsFormat { kJson, kProm };
Result<MetricsFormat> ParseMetricsFormat(const std::string& name);

/// Process-wide registry of named metrics. Naming convention:
/// `fairem.<subsystem>.<metric>`, e.g. "fairem.audit.cells_evaluated".
///
/// Get* registers on first use and returns a stable pointer — hot paths
/// should look a metric up once (function-local static) and increment the
/// pointer thereafter. Metrics are never unregistered; Reset() zeroes values
/// but keeps every pointer valid.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used only on first registration; empty means
  /// DefaultLatencyBounds().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Folds a snapshot (typically a worker's delta shipped over the
  /// telemetry pipe) into this registry: counters add, gauges last-write,
  /// histograms add bucket-wise. Unknown metrics register on the fly; a
  /// histogram whose bounds disagree with the registered ones is skipped
  /// with a WARN (and counted in fairem.telemetry.merge_bounds_mismatches
  /// on the global registry) rather than crashing the merge.
  void Merge(const MetricsSnapshot& delta);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — stable key
  /// order (std::map), so diffs of successive BENCH_*.json files are clean.
  std::string ToJson() const;

  /// Writes ToJson() to `path` atomically and durably (temp + fsync +
  /// rename, like checkpoint Save): a SIGKILLed run never leaves a
  /// truncated BENCH_*.json behind.
  Status WriteJsonFile(const std::string& path) const;

  /// WriteJsonFile generalized over --metrics_format.
  Status WriteFile(const std::string& path, MetricsFormat format) const;

  /// Zeroes every metric's value; registered names/pointers survive.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fairem

#endif  // FAIREM_OBS_METRICS_H_
