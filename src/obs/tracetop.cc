#include "src/obs/tracetop.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/obs/slowlog.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

double ShareOf(const TraceTopSummary& summary, const std::string& hop) {
  if (summary.total_span_us <= 0) return 0.0;
  auto it = summary.hops.find(hop);
  if (it == summary.hops.end()) return 0.0;
  return static_cast<double>(it->second.total_us) /
         static_cast<double>(summary.total_span_us);
}

}  // namespace

TraceTopSummary SummarizeSlowLog(const std::string& text) {
  TraceTopSummary summary;
  for (const std::string& line : Split(text, '\n')) {
    if (TrimAscii(line).empty()) continue;
    Result<SlowQueryEvent> event = ParseSlowQueryEvent(line);
    if (!event.ok()) {
      // Torn final line of a live log, or a foreign line: skip, count,
      // keep reading — a renderer must not die on its own input format's
      // failure modes.
      ++summary.skipped_lines;
      continue;
    }
    ++summary.events;
    for (const WireSpan& span : event->spans) {
      ++summary.spans;
      HopStats& hop = summary.hops[span.name];
      ++hop.count;
      hop.total_us += span.duration_us;
      summary.total_span_us += span.duration_us;
    }
    if (event->total_ms >= summary.slowest_total_ms) {
      summary.slowest_total_ms = event->total_ms;
      summary.slowest_spans = event->spans;
      summary.slowest_trace_id = event->trace_id;
    }
  }
  return summary;
}

std::string RenderHopShares(const TraceTopSummary& summary) {
  std::vector<std::pair<std::string, HopStats>> sorted(summary.hops.begin(),
                                                       summary.hops.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  TablePrinter table({"hop", "calls", "total ms", "share"});
  for (const auto& [name, hop] : sorted) {
    table.AddRow({name, std::to_string(hop.count),
                  FormatDouble(static_cast<double>(hop.total_us) / 1000.0, 2),
                  FormatDouble(ShareOf(summary, name), 3)});
  }
  std::ostringstream os;
  os << summary.events << " slow quer" << (summary.events == 1 ? "y" : "ies")
     << ", " << summary.spans << " spans";
  if (summary.skipped_lines > 0) {
    os << " (" << summary.skipped_lines << " unparseable lines skipped)";
  }
  os << "\n" << table.ToString();
  return os.str();
}

std::string RenderCriticalPath(const std::vector<WireSpan>& spans) {
  if (spans.empty()) return "(no spans)\n";
  std::set<uint64_t> ids;
  for (const WireSpan& span : spans) ids.insert(span.span_id);
  // Root: the longest span whose parent is outside the recorded set (the
  // client's attempt span is usually that parent when the log was written
  // by a router or daemon).
  const WireSpan* root = nullptr;
  for (const WireSpan& span : spans) {
    if (ids.count(span.parent_span_id) != 0) continue;
    if (root == nullptr || span.duration_us > root->duration_us) {
      root = &span;
    }
  }
  if (root == nullptr) root = &spans.front();  // cycle: still render
  std::ostringstream os;
  const double root_us = static_cast<double>(
      root->duration_us > 0 ? root->duration_us : 1);
  const WireSpan* current = root;
  std::set<uint64_t> visited;
  int depth = 0;
  while (current != nullptr && visited.insert(current->span_id).second) {
    for (int i = 0; i < depth; ++i) os << "  ";
    os << current->process << "/" << current->name << "  "
       << FormatDouble(static_cast<double>(current->duration_us) / 1000.0, 2)
       << " ms  ("
       << FormatDouble(static_cast<double>(current->duration_us) / root_us,
                       3)
       << " of root)\n";
    const WireSpan* next = nullptr;
    for (const WireSpan& span : spans) {
      if (span.parent_span_id != current->span_id) continue;
      if (next == nullptr || span.duration_us > next->duration_us) {
        next = &span;
      }
    }
    current = next;
    ++depth;
  }
  return os.str();
}

std::vector<std::string> CompareHopShares(const TraceTopSummary& before,
                                          const TraceTopSummary& after,
                                          double tolerance,
                                          double min_share) {
  std::set<std::string> names;
  for (const auto& [name, hop] : before.hops) names.insert(name);
  for (const auto& [name, hop] : after.hops) names.insert(name);
  std::vector<std::string> drift;
  for (const std::string& name : names) {
    const double a = ShareOf(before, name);
    const double b = ShareOf(after, name);
    if (a < min_share && b < min_share) continue;
    const double delta = b - a;
    if (delta > tolerance || delta < -tolerance) {
      drift.push_back(name + ": share " + FormatDouble(a, 3) + " -> " +
                      FormatDouble(b, 3) + " (delta " +
                      FormatDouble(delta, 3) + ", tolerance " +
                      FormatDouble(tolerance, 3) + ")");
    }
  }
  return drift;
}

}  // namespace fairem
