#include "src/obs/obs.h"

#include <cstdlib>
#include <mutex>

#include "src/obs/profiler.h"
#include "src/text/simd.h"
#include "src/util/durable_file.h"

namespace fairem {
namespace {

std::mutex g_atexit_mu;
ObsOptions* g_atexit_options = nullptr;

void FlushAtExit() {
  ObsOptions options;
  {
    std::lock_guard<std::mutex> lock(g_atexit_mu);
    if (g_atexit_options == nullptr) return;
    options = *g_atexit_options;
  }
  Status st = FlushObsOutputs(options);
  if (!st.ok()) {
    FAIREM_LOG(ERROR) << "failed to flush observability outputs"
                      << LogKv("status", st.ToString());
  }
}

}  // namespace

Status ApplyObsOptions(const ObsOptions& options) {
  if (!options.log_level.empty()) {
    FAIREM_ASSIGN_OR_RETURN(LogLevel level, ParseLogLevel(options.log_level));
    SetGlobalLogLevel(level);
  }
  if (!options.trace_out.empty()) {
    Tracer::Global().set_enabled(true);
  }
  if (!options.profile_out.empty()) {
    ProfilerOptions profiler_options;
    profiler_options.hz = options.profile_hz;
    if (!options.profile_mode.empty()) {
      FAIREM_ASSIGN_OR_RETURN(profiler_options.clock,
                              ParseProfileClock(options.profile_mode));
    }
    FAIREM_RETURN_NOT_OK(Profiler::Global().Start(profiler_options));
  }
  return Status::OK();
}

Status FlushObsOutputs(const ObsOptions& options) {
  // Drain this thread's batched kernel tallies (and pin the dispatch-level
  // gauge) so the snapshot below carries the fairem.simd.* metrics.
  FlushSimdTelemetry();
  if (!options.trace_out.empty()) {
    FAIREM_RETURN_NOT_OK(Tracer::Global().WriteChromeTrace(options.trace_out));
    FAIREM_LOG(INFO) << "wrote Chrome trace"
                     << LogKv("path", options.trace_out)
                     << LogKv("spans", Tracer::Global().Events().size());
    FAIREM_LOG(INFO) << "span summary:\n" << Tracer::Global().FlatSummary();
  }
  if (!options.profile_out.empty()) {
    // Stop before collecting so no sample lands mid-symbolization, then
    // fold the profiler's own numbers into the snapshot the metrics file
    // below captures.
    Profiler& profiler = Profiler::Global();
    if (profiler.active()) (void)profiler.Stop();
    profiler.ExportMetrics();
    profiler.ExportStageCpuGauges();
    const FoldedProfile merged = profiler.MergedProfile();
    FAIREM_RETURN_NOT_OK(
        WriteFileDurable(options.profile_out, merged.ToText()));
    FAIREM_LOG(INFO) << "wrote folded profile"
                     << LogKv("path", options.profile_out)
                     << LogKv("samples", merged.TotalSamples())
                     << LogKv("dropped", profiler.DroppedCount());
  }
  // Process-wide rusage gauges ride along with every flush — they cost one
  // getrusage call and give each bench/CLI run its peak RSS and CPU split.
  EmitProcessResourceGauges();
  if (!options.metrics_out.empty()) {
    FAIREM_RETURN_NOT_OK(MetricsRegistry::Global().WriteFile(
        options.metrics_out, options.metrics_format));
    FAIREM_LOG(INFO) << "wrote metrics snapshot"
                     << LogKv("path", options.metrics_out)
                     << LogKv("format",
                              options.metrics_format == MetricsFormat::kProm
                                  ? "prom"
                                  : "json");
  }
  return Status::OK();
}

void FlushObsOutputsAtExit(const ObsOptions& options) {
  std::lock_guard<std::mutex> lock(g_atexit_mu);
  if (g_atexit_options == nullptr) {
    g_atexit_options = new ObsOptions;
    std::atexit(FlushAtExit);
  }
  *g_atexit_options = options;
}

}  // namespace fairem
