#include "src/obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <mutex>
#include <utility>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

/// The installed sink; guarded by SinkMutex(). Null means stderr.
LogSink& InstalledSink() {
  static LogSink* sink = new LogSink;
  return *sink;
}

/// Reads FAIREM_LOG_LEVEL once; malformed values fall back to info.
LogLevel InitialLevel() {
  const char* env = std::getenv("FAIREM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  Result<LogLevel> parsed = ParseLogLevel(env);
  return parsed.ok() ? *parsed : LogLevel::kInfo;
}

std::atomic<LogLevel>& LevelAtomic() {
  static std::atomic<LogLevel>* level = new std::atomic<LogLevel>(InitialLevel());
  return *level;
}

/// Basename of __FILE__ so lines stay short regardless of build paths.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// "HH:MM:SS" local wall time; enough to correlate a run's log lines.
void AppendWallTime(std::string* out) {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);
  out->append(buf);
}

void Emit(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (InstalledSink()) {
    InstalledSink()(level, line);
  } else {
    std::cerr << line << "\n";
  }
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Result<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower = ToLowerAscii(name);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return Status::InvalidArgument("unknown log level '" + std::string(name) +
                                 "' (want debug|info|warn|error|off)");
}

LogLevel GlobalLogLevel() {
  return LevelAtomic().load(std::memory_order_relaxed);
}

void SetGlobalLogLevel(LogLevel level) {
  LevelAtomic().store(level, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  InstalledSink() = std::move(sink);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage& LogMessage::operator<<(const LogKv& kv) {
  fields_.push_back(' ');
  fields_.append(kv.key);
  fields_.push_back('=');
  fields_.append(kv.value);
  return *this;
}

LogMessage::~LogMessage() {
  std::string line;
  line.reserve(64);
  line.push_back('[');
  AppendWallTime(&line);
  line.push_back(' ');
  line.append(LogLevelName(level_));
  line.push_back(' ');
  line.append(Basename(file_));
  line.push_back(':');
  line.append(std::to_string(line_));
  line.append("] ");
  line.append(stream_.str());
  line.append(fields_);
  Emit(level_, line);
}

namespace internal_logging {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  // Route through the structured sink so a crashing batch run leaves its
  // last words in the same stream as everything else — but never filtered:
  // a failed invariant must be visible even at --log_level=off.
  std::string line_text = std::string("FAIREM_CHECK failed: ") + expr;
  if (!message.empty()) line_text += " — " + message;
  Emit(LogLevel::kError,
       "[" + std::string(LogLevelName(LogLevel::kError)) + " " +
           std::string(Basename(file)) + ":" + std::to_string(line) + "] " +
           line_text);
  // Also hit raw stderr when a custom sink is installed, so the abort cause
  // is never swallowed by a test-capture sink.
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    if (InstalledSink()) {
      std::cerr << "FAIREM_CHECK failed at " << file << ":" << line << ": "
                << expr;
      if (!message.empty()) std::cerr << " — " << message;
      std::cerr << std::endl;
    }
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace fairem
