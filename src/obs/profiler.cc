#include "src/obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

// Under ASan the frame-pointer walk must not read poisoned stack redzones:
// a broken chain pointing into one would otherwise raise a false positive
// from inside the signal handler. Same detection pattern as thread_pool.cc.
#if defined(__SANITIZE_ADDRESS__)
#define FAIREM_PROFILER_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FAIREM_PROFILER_HAS_ASAN 1
#endif
#endif
#ifdef FAIREM_PROFILER_HAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace fairem {

namespace profiler_internal {
std::atomic<bool> g_stage_tracking{false};
}  // namespace profiler_internal

namespace {

constexpr int kMaxFrames = 32;
constexpr int kMaxStageDepth = 16;
constexpr int kMaxStageLen = 64;
constexpr char kUntaggedStage[] = "(untagged)";

// ------------------------------------------------- per-thread sampler state --

/// Read by the signal handler on the same thread that writes it, so only
/// compiler reordering matters; atomic_signal_fence pairs in push/pop and
/// the handler keep the name bytes ordered against the depth counter.
struct ThreadProfState {
  char names[kMaxStageDepth][kMaxStageLen] = {};
  std::atomic<int> depth{0};
  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;
};

thread_local constinit ThreadProfState t_prof;

// ------------------------------------------------------- shared sampler state --

/// One slot of the sample buffer. The handler fills the plain fields and
/// then release-stores `ready`; Collect acquire-loads `ready` before
/// reading, so a slot mid-write on another thread is simply skipped.
struct Sample {
  std::atomic<uint32_t> ready{0};
  uint16_t n_frames = 0;
  char stage[kMaxStageLen] = {0};
  uintptr_t frames[kMaxFrames] = {};
};

/// File-scope so the async-signal handler reaches them without touching any
/// object whose construction it might have interrupted. g_ring is published
/// (release) before g_armed flips true; the handler acquire-loads g_armed.
std::unique_ptr<Sample[]> g_ring_owner;
std::atomic<Sample*> g_ring{nullptr};
std::atomic<uint64_t> g_capacity{0};
std::atomic<uint64_t> g_head{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<bool> g_armed{false};

/// Everything here is async-signal-safe: atomics, raw loads/stores, and
/// pure computation. No allocation, no locks, no library calls; errno is
/// saved and restored around the body.
void ProfilerSignalHandler(int /*sig*/, siginfo_t* /*info*/, void* ucv) {
  int saved_errno = errno;
  if (g_armed.load(std::memory_order_acquire)) {
    Sample* ring = g_ring.load(std::memory_order_relaxed);
    uint64_t capacity = g_capacity.load(std::memory_order_relaxed);
    uint64_t idx = g_head.fetch_add(1, std::memory_order_relaxed);
    if (ring == nullptr || idx >= capacity) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      Sample& s = ring[idx];
      // Innermost open Span of the interrupted thread.
      ThreadProfState& st = t_prof;
      int depth = st.depth.load(std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_acquire);
      s.stage[0] = '\0';
      if (depth > 0) {
        int slot = std::min(depth, kMaxStageDepth) - 1;
        for (int i = 0; i < kMaxStageLen; ++i) {
          s.stage[i] = st.names[slot][i];
          if (s.stage[i] == '\0') break;
        }
        s.stage[kMaxStageLen - 1] = '\0';
      }
      // Registers of the interrupted context.
      uintptr_t pc = 0;
      uintptr_t fp = 0;
      uintptr_t sp = 0;
#if defined(__x86_64__)
      const ucontext_t* uc = static_cast<const ucontext_t*>(ucv);
      pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
      fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
      sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
      const ucontext_t* uc = static_cast<const ucontext_t*>(ucv);
      pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
      fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
      sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#else
      (void)ucv;
#endif
      int n = 0;
      if (pc != 0) s.frames[n++] = pc;
      // Frame-pointer walk, fully validated: the chain must stay inside the
      // registered stack bounds, stay 8-aligned, and move strictly toward
      // the stack base — any violation ends the walk, never faults it.
      uintptr_t hi = st.stack_hi;
      if (hi != 0 && fp != 0) {
        uintptr_t lo = std::max(sp, st.stack_lo);
        while (n < kMaxFrames) {
          if (fp < lo || fp + 2 * sizeof(uintptr_t) > hi ||
              (fp & (sizeof(uintptr_t) - 1)) != 0) {
            break;
          }
#ifdef FAIREM_PROFILER_HAS_ASAN
          if (__asan_region_is_poisoned(reinterpret_cast<void*>(fp),
                                        2 * sizeof(void*)) != nullptr) {
            break;
          }
#endif
          uintptr_t next = *reinterpret_cast<uintptr_t*>(fp);
          uintptr_t ret = *reinterpret_cast<uintptr_t*>(fp + sizeof(uintptr_t));
          if (ret < 0x1000) break;
          s.frames[n++] = ret;
          if (next <= fp) break;  // must move toward the stack base
          fp = next;
        }
      }
      s.n_frames = static_cast<uint16_t>(n);
      s.ready.store(1, std::memory_order_release);
    }
  }
  errno = saved_errno;
}

int TimerForClock(ProfileClock clock) {
  return clock == ProfileClock::kCpu ? ITIMER_PROF : ITIMER_REAL;
}

int SignalForClock(ProfileClock clock) {
  return clock == ProfileClock::kCpu ? SIGPROF : SIGALRM;
}

// ------------------------------------------------------------- symbolization --

std::string HexAddress(uintptr_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(addr));
  return buf;
}

std::string PathBasename(const char* path) {
  std::string s = path;
  size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

/// Folded format reserves ' ' (count separator) and ';' (frame separator).
std::string SanitizeFrameName(std::string name) {
  for (char& c : name) {
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
    if (c == ';') c = ':';
  }
  return name;
}

/// Drops the argument list of a demangled signature; "ns::Fn(int, bool)"
/// reads better as "ns::Fn" in a flamegraph. operator() keeps its parens.
std::string ShortenSignature(std::string name) {
  size_t paren = name.find('(');
  if (paren != std::string::npos && paren >= 8 &&
      name.compare(paren - 8, 8, "operator") == 0) {
    paren = name.find('(', paren + 2);
  }
  if (paren != std::string::npos) name.resize(paren);
  return name;
}

/// `is_leaf` distinguishes the interrupted PC (points at the sampled
/// instruction) from return addresses (point after the call, so resolve
/// address-1 to land inside the caller's call site).
std::string SymbolizeAddress(uintptr_t addr, bool is_leaf) {
  uintptr_t lookup = is_leaf ? addr : addr - 1;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = -1;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      std::string name =
          (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
      std::free(demangled);
      return SanitizeFrameName(ShortenSignature(std::move(name)));
    }
    if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
      // Module-relative offsets are stable across forked processes (same
      // mappings), so unsymbolized frames still merge across workers.
      uintptr_t offset =
          lookup - reinterpret_cast<uintptr_t>(info.dli_fbase);
      return SanitizeFrameName(PathBasename(info.dli_fname) + "+" +
                               HexAddress(offset));
    }
  }
  return HexAddress(addr);
}

// ----------------------------------------------------------- /proc snapshots --

bool ReadSmallFile(const char* path, char* buf, size_t cap) {
  int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  ssize_t n;
  do {
    n = ::read(fd, buf, cap - 1);
  } while (n < 0 && errno == EINTR);
  ::close(fd);
  if (n <= 0) return false;
  buf[n] = '\0';
  return true;
}

bool FindProcField(const char* text, const char* key, uint64_t* out) {
  const char* p = std::strstr(text, key);
  if (p == nullptr) return false;
  p += std::strlen(key);
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(p, &end, 10);
  if (errno != 0 || end == p) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

ProfSpanResources ReadProcResources() {
  ProfSpanResources res;
  char buf[512];
  if (!ReadSmallFile("/proc/self/statm", buf, sizeof(buf))) return res;
  // statm: size resident shared ... (pages)
  char* end = nullptr;
  (void)std::strtoull(buf, &end, 10);  // size: skip
  errno = 0;
  unsigned long long resident = std::strtoull(end, &end, 10);
  if (errno != 0) return res;
  static const long kPageKb = ::sysconf(_SC_PAGESIZE) / 1024;
  res.rss_kb = static_cast<int64_t>(resident) * kPageKb;
  res.ok = true;
  // /proc/self/io may be absent (kernel config); rss alone still counts.
  char io_buf[512];
  if (ReadSmallFile("/proc/self/io", io_buf, sizeof(io_buf))) {
    (void)FindProcField(io_buf, "rchar: ", &res.io_read_bytes);
    (void)FindProcField(io_buf, "wchar: ", &res.io_write_bytes);
  }
  return res;
}

std::vector<std::string> SplitFrames(const std::string& stack) {
  std::vector<std::string> frames;
  size_t start = 0;
  while (start <= stack.size()) {
    size_t semi = stack.find(';', start);
    if (semi == std::string::npos) {
      frames.push_back(stack.substr(start));
      break;
    }
    frames.push_back(stack.substr(start, semi - start));
    start = semi + 1;
  }
  return frames;
}

std::string StageOfStack(const std::string& stack) {
  for (const std::string& frame : SplitFrames(stack)) {
    if (frame.rfind("span:", 0) == 0) return frame.substr(5);
  }
  return kUntaggedStage;
}

std::string FormatPercent(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace

// ------------------------------------------------------------- folded text --

uint64_t FoldedProfile::TotalSamples() const {
  uint64_t total = 0;
  for (const auto& [stack, count] : stacks) total += count;
  return total;
}

void FoldedProfile::Merge(const FoldedProfile& other) {
  for (const auto& [stack, count] : other.stacks) stacks[stack] += count;
}

std::string FoldedProfile::ToText() const {
  std::ostringstream os;
  for (const auto& [stack, count] : stacks) {
    os << stack << ' ' << count << '\n';
  }
  return os.str();
}

FoldedProfile FoldedProfileFromText(const std::string& text) {
  FoldedProfile profile;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line = text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      continue;  // no trailing count: a truncated or foreign line
    }
    const std::string count_text = line.substr(space + 1);
    // strtoull alone is too lenient here: it accepts a sign and negates, so
    // "-4" would wrap to 2^64-4 and poison every aggregate. Digits only.
    bool digits_only = true;
    for (char c : count_text) digits_only = digits_only && c >= '0' && c <= '9';
    if (!digits_only) continue;
    errno = 0;
    char* end = nullptr;
    unsigned long long count = std::strtoull(count_text.c_str(), &end, 10);
    if (errno != 0 || end == count_text.c_str() || *end != '\0' || count == 0) {
      continue;
    }
    profile.stacks[line.substr(0, space)] += static_cast<uint64_t>(count);
  }
  return profile;
}

std::map<std::string, uint64_t> ProcessSampleCounts(
    const FoldedProfile& profile) {
  std::map<std::string, uint64_t> counts;
  for (const auto& [stack, count] : profile.stacks) {
    size_t semi = stack.find(';');
    std::string root = semi == std::string::npos ? stack : stack.substr(0, semi);
    if (root.rfind("process:", 0) == 0) {
      counts[root.substr(8)] += count;
    } else {
      counts["(unknown)"] += count;
    }
  }
  return counts;
}

std::vector<ProfTopRow> AggregateByFrame(const FoldedProfile& profile) {
  std::map<std::string, ProfTopRow> rows;
  for (const auto& [stack, count] : profile.stacks) {
    std::vector<std::string> frames = SplitFrames(stack);
    frames.erase(std::remove_if(frames.begin(), frames.end(),
                                [](const std::string& f) {
                                  return f.rfind("process:", 0) == 0 ||
                                         f.rfind("span:", 0) == 0;
                                }),
                 frames.end());
    if (frames.empty()) continue;
    std::set<std::string> seen;
    for (const std::string& frame : frames) {
      if (seen.insert(frame).second) {
        ProfTopRow& row = rows[frame];
        row.frame = frame;
        row.total += count;
      }
    }
    rows[frames.back()].self += count;
  }
  std::vector<ProfTopRow> out;
  out.reserve(rows.size());
  for (auto& [frame, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(),
            [](const ProfTopRow& a, const ProfTopRow& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.frame < b.frame;
            });
  return out;
}

double StageBreakdown::AttributedFraction() const {
  if (total_samples == 0) return 0.0;
  return static_cast<double>(attributed_samples) /
         static_cast<double>(total_samples);
}

StageBreakdown AggregateByStage(const FoldedProfile& profile) {
  StageBreakdown breakdown;
  std::map<std::string, uint64_t> by_stage;
  for (const auto& [stack, count] : profile.stacks) {
    by_stage[StageOfStack(stack)] += count;
    breakdown.total_samples += count;
  }
  for (const auto& [stage, samples] : by_stage) {
    StageShare share;
    share.stage = stage;
    share.samples = samples;
    share.share = breakdown.total_samples == 0
                      ? 0.0
                      : static_cast<double>(samples) /
                            static_cast<double>(breakdown.total_samples);
    if (stage != kUntaggedStage) breakdown.attributed_samples += samples;
    breakdown.stages.push_back(std::move(share));
  }
  std::sort(breakdown.stages.begin(), breakdown.stages.end(),
            [](const StageShare& a, const StageShare& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.stage < b.stage;
            });
  return breakdown;
}

std::vector<std::string> CompareStageShares(const FoldedProfile& a,
                                            const FoldedProfile& b,
                                            double tolerance,
                                            double min_share) {
  std::map<std::string, double> shares_a;
  std::map<std::string, double> shares_b;
  for (const StageShare& s : AggregateByStage(a).stages) {
    shares_a[s.stage] = s.share;
  }
  for (const StageShare& s : AggregateByStage(b).stages) {
    shares_b[s.stage] = s.share;
  }
  std::set<std::string> stages;
  for (const auto& [stage, _] : shares_a) stages.insert(stage);
  for (const auto& [stage, _] : shares_b) stages.insert(stage);
  std::vector<std::string> drift;
  for (const std::string& stage : stages) {
    double sa = shares_a.count(stage) ? shares_a[stage] : 0.0;
    double sb = shares_b.count(stage) ? shares_b[stage] : 0.0;
    if (std::max(sa, sb) < min_share) continue;
    double diff = std::fabs(sa - sb);
    if (diff > tolerance) {
      drift.push_back("stage " + stage + ": share " + FormatPercent(sa) +
                      " vs " + FormatPercent(sb) + " (diff " +
                      FormatPercent(diff) + " > tolerance " +
                      FormatPercent(tolerance) + ")");
    }
  }
  return drift;
}

std::string RenderProfTopByStack(const FoldedProfile& profile, int top_n) {
  std::vector<ProfTopRow> rows = AggregateByFrame(profile);
  uint64_t total = profile.TotalSamples();
  TablePrinter table({"frame", "self", "total", "self%"});
  int shown = 0;
  for (const ProfTopRow& row : rows) {
    if (top_n > 0 && shown >= top_n) break;
    double self_share =
        total == 0 ? 0.0
                   : static_cast<double>(row.self) / static_cast<double>(total);
    table.AddRow({row.frame, std::to_string(row.self),
                  std::to_string(row.total), FormatPercent(self_share)});
    ++shown;
  }
  std::ostringstream os;
  os << table.ToString();
  os << total << " samples, " << profile.stacks.size() << " unique stacks";
  if (top_n > 0 && rows.size() > static_cast<size_t>(top_n)) {
    os << " (showing top " << top_n << " of " << rows.size() << " frames)";
  }
  os << "\n";
  return os.str();
}

std::string RenderProfTopByStage(const FoldedProfile& profile) {
  StageBreakdown breakdown = AggregateByStage(profile);
  TablePrinter table({"stage", "samples", "share"});
  for (const StageShare& share : breakdown.stages) {
    table.AddRow({share.stage, std::to_string(share.samples),
                  FormatPercent(share.share)});
  }
  std::ostringstream os;
  os << table.ToString();
  std::map<std::string, uint64_t> processes = ProcessSampleCounts(profile);
  if (!processes.empty()) {
    os << "processes:";
    for (const auto& [label, count] : processes) {
      os << ' ' << label << '=' << count;
    }
    os << "\n";
  }
  os << "attributed " << breakdown.attributed_samples << "/"
     << breakdown.total_samples << " samples ("
     << FormatPercent(breakdown.AttributedFraction())
     << ") to named spans\n";
  return os.str();
}

// ---------------------------------------------------------------- sampler --

Result<ProfileClock> ParseProfileClock(const std::string& text) {
  if (text.empty() || text == "cpu") return ProfileClock::kCpu;
  if (text == "wall") return ProfileClock::kWall;
  return Status::InvalidArgument("bad --profile_mode '" + text +
                                 "' (expected cpu or wall)");
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler;
  return *profiler;
}

void Profiler::RegisterCurrentThread() {
  ThreadProfState& st = t_prof;
  if (st.stack_hi != 0) return;
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      st.stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
      st.stack_hi = st.stack_lo + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
}

Status Profiler::Arm() {
  itimerval tv;
  std::memset(&tv, 0, sizeof(tv));
  long usec = 1000000L / options_.hz;
  if (usec <= 0) usec = 1;
  tv.it_interval.tv_sec = usec / 1000000L;
  tv.it_interval.tv_usec = usec % 1000000L;
  tv.it_value = tv.it_interval;
  if (::setitimer(TimerForClock(options_.clock), &tv, nullptr) != 0) {
    return Status::IOError(std::string("setitimer failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status Profiler::Start(const ProfilerOptions& options) {
  if (active_) {
    return Status::FailedPrecondition("profiler already running");
  }
  if (options.hz < 1 || options.hz > 10000) {
    return Status::InvalidArgument("--profile_hz must be in [1, 10000], got " +
                                   std::to_string(options.hz));
  }
  if (options.capacity == 0) {
    return Status::InvalidArgument("profiler capacity must be positive");
  }
  options_ = options;
  exported_upto_ = 0;
  exported_dropped_ = 0;
  // (Re)allocate the buffer before anything is armed; the previous run's
  // samples (if any) are gone after this point.
  if (g_capacity.load(std::memory_order_relaxed) != options.capacity ||
      g_ring_owner == nullptr) {
    g_ring_owner = std::make_unique<Sample[]>(options.capacity);
    g_capacity.store(options.capacity, std::memory_order_relaxed);
  } else {
    for (size_t i = 0; i < options.capacity; ++i) {
      g_ring_owner[i].ready.store(0, std::memory_order_relaxed);
    }
  }
  g_head.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_ring.store(g_ring_owner.get(), std::memory_order_release);
  RegisterCurrentThread();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &ProfilerSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  if (::sigaction(SignalForClock(options_.clock), &sa, nullptr) != 0) {
    return Status::IOError(std::string("sigaction failed: ") +
                           std::strerror(errno));
  }
  profiler_internal::g_stage_tracking.store(true, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
  if (Status st = Arm(); !st.ok()) {
    g_armed.store(false, std::memory_order_relaxed);
    profiler_internal::g_stage_tracking.store(false,
                                              std::memory_order_relaxed);
    return st;
  }
  active_ = true;
  return Status::OK();
}

Status Profiler::Stop() {
  if (!active_) return Status::OK();
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  ::setitimer(TimerForClock(options_.clock), &off, nullptr);
  g_armed.store(false, std::memory_order_relaxed);
  profiler_internal::g_stage_tracking.store(false, std::memory_order_relaxed);
  active_ = false;
  return Status::OK();
}

Status Profiler::RestartAfterFork(const std::string& process_label) {
  // fork() clears interval timers in the child, so without this re-arm an
  // inherited "active" profiler would silently collect nothing.
  if (!active_) return Status::OK();
  options_.process_label = process_label;
  Sample* ring = g_ring.load(std::memory_order_relaxed);
  uint64_t capacity = g_capacity.load(std::memory_order_relaxed);
  // Single-threaded after fork: no handler can be in flight, so resetting
  // the buffer (discarding the parent's inherited samples) is plain stores.
  for (uint64_t i = 0; i < capacity && ring != nullptr; ++i) {
    ring[i].ready.store(0, std::memory_order_relaxed);
  }
  g_head.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  exported_upto_ = 0;
  exported_dropped_ = 0;
  RegisterCurrentThread();
  return Arm();
}

uint64_t Profiler::SampleCount() const {
  return std::min(g_head.load(std::memory_order_acquire),
                  g_capacity.load(std::memory_order_relaxed));
}

uint64_t Profiler::DroppedCount() const {
  return g_dropped.load(std::memory_order_relaxed);
}

FoldedProfile Profiler::Collect() {
  FoldedProfile profile;
  Sample* ring = g_ring.load(std::memory_order_relaxed);
  if (ring == nullptr) return profile;
  uint64_t end = SampleCount();
  std::map<uintptr_t, std::string> symbol_cache[2];  // [is_leaf]
  auto symbolize = [&](uintptr_t addr, bool is_leaf) -> const std::string& {
    auto& cache = symbol_cache[is_leaf ? 1 : 0];
    auto it = cache.find(addr);
    if (it == cache.end()) {
      it = cache.emplace(addr, SymbolizeAddress(addr, is_leaf)).first;
    }
    return it->second;
  };
  const std::string prefix =
      "process:" + SanitizeFrameName(options_.process_label) + ";span:";
  for (uint64_t i = 0; i < end; ++i) {
    Sample& s = ring[i];
    if (s.ready.load(std::memory_order_acquire) == 0) continue;
    std::string stack = prefix;
    stack += s.stage[0] == '\0'
                 ? kUntaggedStage
                 : SanitizeFrameName(std::string(
                       s.stage, ::strnlen(s.stage, kMaxStageLen)));
    if (s.n_frames == 0) {
      stack += ";(no_frames)";
    } else {
      for (int f = s.n_frames - 1; f >= 0; --f) {
        stack += ';';
        stack += symbolize(s.frames[f], f == 0);
      }
    }
    profile.stacks[stack] += 1;
  }
  return profile;
}

void Profiler::AbsorbFolded(const std::string& folded_text) {
  FoldedProfile incoming = FoldedProfileFromText(folded_text);
  std::lock_guard<std::mutex> lock(merge_mu_);
  absorbed_.Merge(incoming);
}

FoldedProfile Profiler::MergedProfile() {
  FoldedProfile merged = Collect();
  std::lock_guard<std::mutex> lock(merge_mu_);
  merged.Merge(absorbed_);
  return merged;
}

void Profiler::ExportMetrics() {
  Sample* ring = g_ring.load(std::memory_order_relaxed);
  uint64_t end = SampleCount();
  if (ring != nullptr && end > exported_upto_) {
    std::map<std::string, uint64_t> by_stage;
    uint64_t counted = 0;
    for (uint64_t i = exported_upto_; i < end; ++i) {
      Sample& s = ring[i];
      if (s.ready.load(std::memory_order_acquire) == 0) continue;
      std::string stage =
          s.stage[0] == '\0'
              ? kUntaggedStage
              : std::string(s.stage, ::strnlen(s.stage, kMaxStageLen));
      ++by_stage[stage];
      ++counted;
    }
    exported_upto_ = end;
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.GetCounter("fairem.profile.samples")->Increment(counted);
    for (const auto& [stage, samples] : by_stage) {
      reg.GetCounter("fairem.profile.stage." + stage + ".samples")
          ->Increment(samples);
    }
  }
  uint64_t dropped = DroppedCount();
  if (dropped > exported_dropped_) {
    MetricsRegistry::Global()
        .GetCounter("fairem.profile.dropped_samples")
        ->Increment(dropped - exported_dropped_);
    exported_dropped_ = dropped;
  }
}

void Profiler::ExportStageCpuGauges() {
  if (options_.hz < 1) return;
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  constexpr char kPrefix[] = "fairem.profile.stage.";
  constexpr char kSuffix[] = ".samples";
  for (const auto& [name, count] : snap.counters) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= sizeof(kSuffix) - 1 ||
        name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                     kSuffix) != 0) {
      continue;
    }
    std::string base = name.substr(0, name.size() - (sizeof(kSuffix) - 1));
    MetricsRegistry::Global()
        .GetGauge(base + ".cpu_seconds")
        ->Set(static_cast<double>(count) / static_cast<double>(options_.hz));
  }
}

// -------------------------------------------------------------- span hooks --

ProfSpanResources ProfilerSpanBegin(const char* name, size_t len) {
  ThreadProfState& st = t_prof;
  int depth = st.depth.load(std::memory_order_relaxed);
  if (depth >= 0 && depth < kMaxStageDepth) {
    size_t n = std::min(len, static_cast<size_t>(kMaxStageLen - 1));
    std::memcpy(st.names[depth], name, n);
    st.names[depth][n] = '\0';
  }
  // The name bytes must be visible before the handler can see the new
  // depth; same-thread signal delivery makes this a compiler fence only.
  std::atomic_signal_fence(std::memory_order_release);
  st.depth.store(depth + 1, std::memory_order_relaxed);
  return ReadProcResources();
}

void ProfilerSpanEnd(const ProfSpanResources& start) {
  ThreadProfState& st = t_prof;
  int depth = st.depth.load(std::memory_order_relaxed);
  if (depth <= 0) return;  // unbalanced pop: drop rather than corrupt
  // Attribute resource deltas to the span being closed (stack top). A span
  // deeper than the name buffer has no recorded name — skip its metrics.
  if (depth <= kMaxStageDepth && start.ok &&
      ProfilerStageTrackingEnabled()) {
    ProfSpanResources now = ReadProcResources();
    if (now.ok) {
      std::string base = "fairem.profile.span.";
      base.append(st.names[depth - 1],
                  ::strnlen(st.names[depth - 1], kMaxStageLen));
      MetricsRegistry& reg = MetricsRegistry::Global();
      reg.GetGauge(base + ".rss_delta_kb")
          ->Set(static_cast<double>(now.rss_kb - start.rss_kb));
      if (now.io_read_bytes > start.io_read_bytes) {
        reg.GetCounter(base + ".io_read_bytes")
            ->Increment(now.io_read_bytes - start.io_read_bytes);
      }
      if (now.io_write_bytes > start.io_write_bytes) {
        reg.GetCounter(base + ".io_write_bytes")
            ->Increment(now.io_write_bytes - start.io_write_bytes);
      }
    }
  }
  std::atomic_signal_fence(std::memory_order_release);
  st.depth.store(depth - 1, std::memory_order_relaxed);
}

void EmitProcessResourceGauges() {
  rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return;
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("fairem.proc.peak_rss_mb")
      ->Set(static_cast<double>(usage.ru_maxrss) / 1024.0);
  reg.GetGauge("fairem.proc.user_cpu_s")
      ->Set(static_cast<double>(usage.ru_utime.tv_sec) +
            static_cast<double>(usage.ru_utime.tv_usec) / 1e6);
  reg.GetGauge("fairem.proc.sys_cpu_s")
      ->Set(static_cast<double>(usage.ru_stime.tv_sec) +
            static_cast<double>(usage.ru_stime.tv_usec) / 1e6);
  reg.GetGauge("fairem.proc.vol_ctx_switches")
      ->Set(static_cast<double>(usage.ru_nvcsw));
  reg.GetGauge("fairem.proc.invol_ctx_switches")
      ->Set(static_cast<double>(usage.ru_nivcsw));
}

}  // namespace fairem
