#include "src/obs/benchdiff.h"

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

double Ratio(double old_value, double new_value) {
  if (old_value == 0.0) {
    return new_value == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return new_value / old_value;
}

std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integral values (counters, bucket counts) print without a fraction.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return FormatDouble(v, 6);
}

}  // namespace

Result<FailOnSpec> ParseFailOnSpec(const std::string& spec) {
  size_t op_pos = spec.find_first_of("<>");
  if (op_pos == std::string::npos || op_pos == 0 || op_pos + 1 >= spec.size()) {
    return Status::InvalidArgument(
        "bad --fail_on spec '" + spec +
        "' (expected <metric><op><threshold>[x], e.g. "
        "'fairem.matcher.predict_seconds.mean>1.10x')");
  }
  FailOnSpec out;
  out.raw = spec;
  out.metric = std::string(TrimAscii(spec.substr(0, op_pos)));
  out.op = spec[op_pos];
  std::string rhs(TrimAscii(spec.substr(op_pos + 1)));
  if (rhs.size() > 3 && (rhs.substr(rhs.size() - 3) == "abs" ||
                         rhs.substr(rhs.size() - 3) == "ABS")) {
    out.absolute = true;
    rhs.resize(rhs.size() - 3);
  } else if (!rhs.empty() && (rhs.back() == 'x' || rhs.back() == 'X')) {
    out.ratio = true;
    rhs.pop_back();
  }
  if (out.metric.empty() || !ParseDouble(rhs, &out.threshold)) {
    return Status::InvalidArgument("bad --fail_on threshold in '" + spec +
                                   "'");
  }
  return out;
}

std::map<std::string, double> FlattenSnapshot(const MetricsSnapshot& snap) {
  std::map<std::string, double> flat;
  for (const auto& [name, value] : snap.counters) {
    flat[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    flat[name] = value;
  }
  for (const auto& [name, h] : snap.histograms) {
    flat[name + ".mean"] = h.Mean();
    flat[name + ".count"] = static_cast<double>(h.count);
    flat[name + ".sum"] = h.sum;
    flat[name + ".p50"] = h.Quantile(0.50);
    flat[name + ".p95"] = h.Quantile(0.95);
    flat[name + ".p99"] = h.Quantile(0.99);
  }
  return flat;
}

std::vector<BenchDiffRow> DiffSnapshotsForBench(
    const MetricsSnapshot& old_snap, const MetricsSnapshot& new_snap) {
  std::map<std::string, double> old_flat = FlattenSnapshot(old_snap);
  std::map<std::string, double> new_flat = FlattenSnapshot(new_snap);
  std::set<std::string> names;
  for (const auto& [name, _] : old_flat) names.insert(name);
  for (const auto& [name, _] : new_flat) names.insert(name);
  std::vector<BenchDiffRow> rows;
  rows.reserve(names.size());
  for (const std::string& name : names) {
    BenchDiffRow row;
    row.metric = name;
    auto old_it = old_flat.find(name);
    auto new_it = new_flat.find(name);
    row.in_old = old_it != old_flat.end();
    row.in_new = new_it != new_flat.end();
    row.old_value = row.in_old ? old_it->second : 0.0;
    row.new_value = row.in_new ? new_it->second : 0.0;
    row.delta = row.new_value - row.old_value;
    row.ratio = Ratio(row.old_value, row.new_value);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderBenchDiffTable(const std::vector<BenchDiffRow>& rows,
                                 bool changed_only) {
  TablePrinter table({"metric", "old", "new", "delta", "ratio"});
  size_t hidden = 0;
  for (const BenchDiffRow& row : rows) {
    if (changed_only && row.delta == 0.0 && row.in_old && row.in_new) {
      ++hidden;
      continue;
    }
    std::string metric = row.metric;
    if (!row.in_old) metric += " (new)";
    if (!row.in_new) metric += " (gone)";
    table.AddRow({metric, FormatValue(row.old_value),
                  FormatValue(row.new_value), FormatValue(row.delta),
                  FormatValue(row.ratio) + "x"});
  }
  std::ostringstream os;
  os << table.ToString();
  if (hidden > 0) {
    os << "(" << hidden << " unchanged metric" << (hidden == 1 ? "" : "s")
       << " hidden; pass --all to show)\n";
  }
  return os.str();
}

Result<std::vector<std::string>> CheckFailOnSpecs(
    const std::map<std::string, double>& old_flat,
    const std::map<std::string, double>& new_flat,
    const std::vector<FailOnSpec>& specs) {
  std::vector<std::string> violations;
  for (const FailOnSpec& spec : specs) {
    auto new_it = new_flat.find(spec.metric);
    if (new_it == new_flat.end()) {
      return Status::InvalidArgument("--fail_on metric '" + spec.metric +
                                     "' not present in the new snapshot");
    }
    auto old_it = old_flat.find(spec.metric);
    double old_value = old_it == old_flat.end() ? 0.0 : old_it->second;
    double new_value = new_it->second;
    double observed = spec.absolute ? new_value
                      : spec.ratio  ? Ratio(old_value, new_value)
                                    : new_value - old_value;
    bool violated =
        spec.op == '>' ? observed > spec.threshold : observed < spec.threshold;
    if (violated) {
      std::ostringstream os;
      os << spec.raw << ": "
         << (spec.absolute ? "value " : spec.ratio ? "ratio " : "delta ")
         << FormatValue(observed) << (spec.ratio ? "x" : "") << " (old "
         << FormatValue(old_value) << ", new " << FormatValue(new_value)
         << ")";
      violations.push_back(os.str());
    }
  }
  return violations;
}

}  // namespace fairem
