#ifndef FAIREM_DATA_CSV_H_
#define FAIREM_DATA_CSV_H_

#include <string>
#include <string_view>

#include "src/data/table.h"
#include "src/util/result.h"

namespace fairem {

/// Options for CSV parsing/serialization. RFC-4180-ish: double-quote
/// quoting, embedded quotes doubled; a cell equal to `null_token` (by
/// default the empty string is NOT null — only the explicit token is) is
/// read back as a null cell.
struct CsvOptions {
  char delimiter = ',';
  /// Cells exactly equal to this (unquoted) token are treated as null.
  std::string null_token = "\\N";
  /// If true, the first column is parsed as the integer entity_id.
  bool first_column_is_entity_id = true;
  /// If true (the default), reading rejects byte sequences that are not
  /// well-formed UTF-8 with InvalidArgument instead of letting mojibake
  /// flow into tokenizers and similarity measures.
  bool validate_utf8 = true;
};

/// Serializes `table` to CSV text (header row first).
std::string WriteCsvString(const Table& table,
                           const CsvOptions& options = {});

/// Parses CSV text into a table named `table_name`.
Result<Table> ReadCsvString(std::string_view text, std::string table_name,
                            const CsvOptions& options = {});

/// File variants.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});
Result<Table> ReadCsvFile(const std::string& path, std::string table_name,
                          const CsvOptions& options = {});

}  // namespace fairem

#endif  // FAIREM_DATA_CSV_H_
