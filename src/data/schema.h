#ifndef FAIREM_DATA_SCHEMA_H_
#define FAIREM_DATA_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// An ordered list of attribute (column) names. All attributes are
/// string-typed at the storage layer; type inference for feature generation
/// happens in src/feature.
class Schema {
 public:
  Schema() = default;

  /// Attribute names must be unique and non-empty.
  static Result<Schema> Make(std::vector<std::string> attribute_names);

  size_t num_attributes() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of `name`, or NotFound.
  Result<size_t> Index(std::string_view name) const;

  /// True if `name` is an attribute of this schema.
  bool Contains(std::string_view name) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace fairem

#endif  // FAIREM_DATA_SCHEMA_H_
