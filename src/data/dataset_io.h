#ifndef FAIREM_DATA_DATASET_IO_H_
#define FAIREM_DATA_DATASET_IO_H_

#include <string>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// Persists a complete matching task to a directory — the format in which
/// the generated benchmarks can be published and shared (the paper releases
/// its social datasets the same way). Layout:
///
///   <dir>/meta.csv        key/value dataset metadata
///   <dir>/table_a.csv     left records (entity_id + attributes)
///   <dir>/table_b.csv     right records
///   <dir>/train.csv       left,right,is_match row indices
///   <dir>/valid.csv
///   <dir>/test.csv
///
/// The directory must already exist; files are overwritten.
Status SaveDataset(const EMDataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset and validates it.
Result<EMDataset> LoadDataset(const std::string& dir);

}  // namespace fairem

#endif  // FAIREM_DATA_DATASET_IO_H_
