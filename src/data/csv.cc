#include "src/data/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "src/robust/failpoint.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

bool NeedsQuoting(std::string_view cell, char delim) {
  for (char c : cell) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view cell, char delim) {
  if (!NeedsQuoting(cell, delim)) {
    out->append(cell);
    return;
  }
  out->push_back('"');
  for (char c : cell) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Parses one CSV logical record starting at *pos; advances *pos past the
/// record's terminating newline. Returns false at end of input.
bool ParseRecord(std::string_view text, size_t* pos, char delim,
                 std::vector<std::string>* fields, bool* parse_error) {
  *parse_error = false;
  fields->clear();
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == delim) {
        fields->push_back(std::move(field));
        field.clear();
      } else if (c == '\n') {
        ++i;
        break;
      } else if (c == '\r') {
        // Swallow; handles \r\n and lone \r.
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        ++i;
        break;
      } else {
        field.push_back(c);
      }
    }
  }
  if (in_quotes) {
    *parse_error = true;
    return false;
  }
  *pos = i;
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

}  // namespace

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.first_column_is_entity_id) {
    out.append("entity_id");
    if (schema.num_attributes() > 0) out.push_back(options.delimiter);
  }
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out.push_back(options.delimiter);
    AppendQuoted(&out, schema.name(c), options.delimiter);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (options.first_column_is_entity_id) {
      out.append(std::to_string(table.row(r).entity_id));
      if (schema.num_attributes() > 0) out.push_back(options.delimiter);
    }
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      if (table.IsNull(r, c)) {
        out.append(options.null_token);
      } else {
        AppendQuoted(&out, table.value(r, c), options.delimiter);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> ReadCsvString(std::string_view text, std::string table_name,
                            const CsvOptions& options) {
  if (options.validate_utf8 && !IsValidUtf8(text)) {
    return Status::InvalidArgument("CSV input is not valid UTF-8");
  }
  size_t pos = 0;
  std::vector<std::string> fields;
  bool parse_error = false;
  if (!ParseRecord(text, &pos, options.delimiter, &fields, &parse_error)) {
    return Status::InvalidArgument(parse_error ? "unterminated quoted field"
                                               : "empty CSV input");
  }
  size_t first_attr = options.first_column_is_entity_id ? 1 : 0;
  if (fields.size() < first_attr) {
    return Status::InvalidArgument("CSV header too short");
  }
  std::vector<std::string> attr_names(fields.begin() + first_attr,
                                      fields.end());
  FAIREM_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attr_names)));
  Table table(std::move(table_name), std::move(schema));

  size_t line = 1;
  while (ParseRecord(text, &pos, options.delimiter, &fields, &parse_error)) {
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != table.schema().num_attributes() + first_attr) {
      return Status::InvalidArgument("CSV row " + std::to_string(line) +
                                     " has wrong field count");
    }
    Record record;
    if (options.first_column_is_entity_id) {
      double id = 0.0;
      if (!ParseDouble(fields[0], &id)) {
        return Status::InvalidArgument("CSV row " + std::to_string(line) +
                                       ": bad entity_id '" + fields[0] + "'");
      }
      record.entity_id = static_cast<int64_t>(id);
    }
    for (size_t c = first_attr; c < fields.size(); ++c) {
      if (fields[c] == options.null_token) {
        record.cells.emplace_back(std::nullopt);
      } else {
        record.cells.emplace_back(std::move(fields[c]));
      }
    }
    FAIREM_RETURN_NOT_OK(table.Append(std::move(record)));
  }
  if (parse_error) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  return table;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  FAIREM_FAILPOINT("csv_write");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  std::string text = WriteCsvString(table, options);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<Table> ReadCsvFile(const std::string& path, std::string table_name,
                          const CsvOptions& options) {
  FAIREM_FAILPOINT("csv_read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ReadCsvString(ss.str(), std::move(table_name), options);
}

}  // namespace fairem
