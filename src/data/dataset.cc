#include "src/data/dataset.h"

#include <cmath>

namespace fairem {

const char* SensitiveAttrKindName(SensitiveAttrKind kind) {
  switch (kind) {
    case SensitiveAttrKind::kBinary:
      return "binary";
    case SensitiveAttrKind::kMultiValued:
      return "multi_valued";
    case SensitiveAttrKind::kSetwise:
      return "setwise";
  }
  return "unknown";
}

double EMDataset::PositiveRate() const {
  size_t total = train.size() + valid.size() + test.size();
  if (total == 0) return 0.0;
  size_t positives = 0;
  for (const auto* split : {&train, &valid, &test}) {
    for (const auto& p : *split) {
      if (p.is_match) ++positives;
    }
  }
  return static_cast<double>(positives) / static_cast<double>(total);
}

std::vector<LabeledPair> EMDataset::AllPairs() const {
  std::vector<LabeledPair> all;
  all.reserve(train.size() + valid.size() + test.size());
  all.insert(all.end(), train.begin(), train.end());
  all.insert(all.end(), valid.begin(), valid.end());
  all.insert(all.end(), test.begin(), test.end());
  return all;
}

Status EMDataset::Validate() const {
  for (const auto* split : {&train, &valid, &test}) {
    for (const auto& p : *split) {
      if (p.left >= table_a.num_rows() || p.right >= table_b.num_rows()) {
        return Status::OutOfRange("pair index out of range in dataset '" +
                                  name + "'");
      }
    }
  }
  for (const auto& attr : matching_attrs) {
    if (!table_a.schema().Contains(attr) || !table_b.schema().Contains(attr)) {
      return Status::InvalidArgument("matching attribute '" + attr +
                                     "' missing from a table schema");
    }
  }
  if (!table_a.schema().Contains(sensitive_attr) ||
      !table_b.schema().Contains(sensitive_attr)) {
    return Status::InvalidArgument("sensitive attribute '" + sensitive_attr +
                                   "' missing from a table schema");
  }
  if (default_threshold < 0.0 || default_threshold > 1.0) {
    return Status::InvalidArgument("default threshold out of [0,1]");
  }
  return Status::OK();
}

Status SplitPairs(std::vector<LabeledPair> pairs, double train_frac,
                  double valid_frac, Rng* rng,
                  std::vector<LabeledPair>* train,
                  std::vector<LabeledPair>* valid,
                  std::vector<LabeledPair>* test) {
  if (train_frac < 0.0 || valid_frac < 0.0 ||
      train_frac + valid_frac > 1.0 + 1e-9) {
    return Status::InvalidArgument("invalid split fractions");
  }
  rng->Shuffle(&pairs);
  size_t n = pairs.size();
  size_t n_train = static_cast<size_t>(std::floor(train_frac * n));
  size_t n_valid = static_cast<size_t>(std::floor(valid_frac * n));
  train->assign(pairs.begin(), pairs.begin() + n_train);
  valid->assign(pairs.begin() + n_train, pairs.begin() + n_train + n_valid);
  test->assign(pairs.begin() + n_train + n_valid, pairs.end());
  return Status::OK();
}

}  // namespace fairem
