#ifndef FAIREM_DATA_DATASET_H_
#define FAIREM_DATA_DATASET_H_

#include <string>
#include <vector>

#include "src/data/table.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {

/// A candidate record pair: indices into table A and table B, plus the
/// ground-truth match label.
struct LabeledPair {
  size_t left = 0;   // row index into table_a
  size_t right = 0;  // row index into table_b
  bool is_match = false;
};

/// The kind of sensitive attribute, per Table 1 of the paper.
enum class SensitiveAttrKind {
  kBinary,         // e.g. gender = {male, female}
  kMultiValued,    // one of several exclusive values, e.g. venue
  kSetwise,        // a subset of values, e.g. genre = {Pop, Rock}
};

const char* SensitiveAttrKindName(SensitiveAttrKind kind);

/// A complete entity-matching task: two tables, labelled pairs split into
/// train/valid/test, the attributes used for matching, and the
/// fairness-sensitive attribute (which matchers must never see as input).
struct EMDataset {
  std::string name;
  Table table_a;
  Table table_b;

  std::vector<LabeledPair> train;
  std::vector<LabeledPair> valid;
  std::vector<LabeledPair> test;

  /// Attributes visible to matchers. May include the sensitive attribute —
  /// the paper's social datasets match on {fullName, country} and
  /// {firstName, lastName, race} where country/race are also audited.
  std::vector<std::string> matching_attrs;

  /// Sensitive attribute name; must exist in both schemas.
  std::string sensitive_attr;
  SensitiveAttrKind sensitive_kind = SensitiveAttrKind::kBinary;

  /// Separator for setwise attribute values ("Pop|Rock").
  char setwise_separator = '|';

  /// Default matching threshold the paper used for this dataset
  /// (0.5 everywhere, 0.9 for Cricket).
  double default_threshold = 0.5;

  /// The labelled-pair count of the full-scale task this dataset simulates
  /// (Table 4's train+test sizes). Matchers with scalability limits decide
  /// on this, not on the laptop-scale sample (Dedupe "did not scale" for
  /// FacultyMatch and NoFlyCompas in the paper). 0 = unknown/native size.
  size_t simulated_full_scale_pairs = 0;

  /// Fraction of positive labels over all labelled pairs.
  double PositiveRate() const;

  /// All labelled pairs (train + valid + test) concatenated.
  std::vector<LabeledPair> AllPairs() const;

  /// Structural sanity check: pair indices in range, attrs exist, schemas
  /// contain the sensitive attribute.
  Status Validate() const;
};

/// Shuffles `pairs` and splits into train/valid/test with the given
/// fractions (test gets the remainder). Fractions must be in [0,1] and sum
/// to <= 1.
Status SplitPairs(std::vector<LabeledPair> pairs, double train_frac,
                  double valid_frac, Rng* rng,
                  std::vector<LabeledPair>* train,
                  std::vector<LabeledPair>* valid,
                  std::vector<LabeledPair>* test);

}  // namespace fairem

#endif  // FAIREM_DATA_DATASET_H_
