#ifndef FAIREM_DATA_TABLE_H_
#define FAIREM_DATA_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/data/schema.h"
#include "src/util/result.h"

namespace fairem {

/// A nullable string cell. Nulls model missing values in dirty datasets.
using Cell = std::optional<std::string>;

/// One entity record: an entity id plus one cell per schema attribute.
struct Record {
  /// Stable identifier of the underlying real-world entity; records in two
  /// tables that refer to the same entity share this id (the ground-truth
  /// labelling hook, like scholarID / personID in the paper).
  int64_t entity_id = -1;
  std::vector<Cell> cells;
};

/// An in-memory relation: a schema plus rows of nullable string cells.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a record; its cell count must equal the schema width.
  Status Append(Record record);

  /// Convenience: appends a row of non-null values.
  Status AppendValues(int64_t entity_id, std::vector<std::string> values);

  const Record& row(size_t i) const { return rows_[i]; }
  Record& mutable_row(size_t i) { return rows_[i]; }

  /// Cell (row, col); empty string_view for null. Use IsNull to distinguish
  /// null from "". Aborts on out-of-range indices — use At() in paths that
  /// consume untrusted input.
  std::string_view value(size_t row, size_t col) const;
  bool IsNull(size_t row, size_t col) const;

  /// Bounds-checked cell access: InvalidArgument instead of abort when
  /// (row, col) is out of range. Nulls read back as the empty string.
  Result<std::string_view> At(size_t row, size_t col) const;

  /// Cell by attribute name; NotFound if the attribute does not exist.
  Result<std::string> ValueByName(size_t row, std::string_view attr) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Record> rows_;
};

}  // namespace fairem

#endif  // FAIREM_DATA_TABLE_H_
