#include "src/data/dataset_io.h"

#include <string>
#include <vector>

#include "src/data/csv.h"
#include "src/robust/failpoint.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

constexpr char kMetaFile[] = "/meta.csv";
constexpr char kTableAFile[] = "/table_a.csv";
constexpr char kTableBFile[] = "/table_b.csv";

/// Serializes a pair split as a 3-column table so the CSV layer handles
/// quoting and parsing uniformly.
Status SavePairs(const std::vector<LabeledPair>& pairs,
                 const std::string& path) {
  FAIREM_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make({"left", "right", "is_match"}));
  Table t("pairs", schema);
  for (size_t i = 0; i < pairs.size(); ++i) {
    FAIREM_RETURN_NOT_OK(t.AppendValues(
        static_cast<int64_t>(i),
        {std::to_string(pairs[i].left), std::to_string(pairs[i].right),
         pairs[i].is_match ? "1" : "0"}));
  }
  return WriteCsvFile(t, path);
}

Result<std::vector<LabeledPair>> LoadPairs(const std::string& path) {
  FAIREM_ASSIGN_OR_RETURN(Table t, ReadCsvFile(path, "pairs"));
  if (t.schema().num_attributes() != 3) {
    return Status::InvalidArgument(
        "pair file " + path + " must have 3 columns (left, right, is_match), "
        "got " + std::to_string(t.schema().num_attributes()));
  }
  std::vector<LabeledPair> pairs;
  pairs.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    LabeledPair p;
    FAIREM_ASSIGN_OR_RETURN(std::string_view left_cell, t.At(r, 0));
    FAIREM_ASSIGN_OR_RETURN(std::string_view right_cell, t.At(r, 1));
    FAIREM_ASSIGN_OR_RETURN(std::string_view match_cell, t.At(r, 2));
    double left = 0.0;
    double right = 0.0;
    if (!ParseDouble(left_cell, &left) || !ParseDouble(right_cell, &right)) {
      return Status::InvalidArgument("bad pair row in " + path);
    }
    p.left = static_cast<size_t>(left);
    p.right = static_cast<size_t>(right);
    p.is_match = match_cell == "1";
    pairs.push_back(p);
  }
  return pairs;
}

}  // namespace

Status SaveDataset(const EMDataset& dataset, const std::string& dir) {
  FAIREM_FAILPOINT("dataset_save");
  FAIREM_RETURN_NOT_OK(dataset.Validate());
  // Metadata as a 2-column key/value table.
  FAIREM_ASSIGN_OR_RETURN(Schema meta_schema, Schema::Make({"key", "value"}));
  Table meta("meta", meta_schema);
  auto put = [&](const std::string& k, const std::string& v) {
    return meta.AppendValues(static_cast<int64_t>(meta.num_rows()), {k, v});
  };
  FAIREM_RETURN_NOT_OK(put("name", dataset.name));
  FAIREM_RETURN_NOT_OK(put("sensitive_attr", dataset.sensitive_attr));
  FAIREM_RETURN_NOT_OK(
      put("sensitive_kind", SensitiveAttrKindName(dataset.sensitive_kind)));
  FAIREM_RETURN_NOT_OK(
      put("setwise_separator", std::string(1, dataset.setwise_separator)));
  FAIREM_RETURN_NOT_OK(
      put("default_threshold", FormatDouble(dataset.default_threshold, 4)));
  FAIREM_RETURN_NOT_OK(
      put("simulated_full_scale_pairs",
          std::to_string(dataset.simulated_full_scale_pairs)));
  FAIREM_RETURN_NOT_OK(
      put("matching_attrs", Join(dataset.matching_attrs, ";")));
  FAIREM_RETURN_NOT_OK(WriteCsvFile(meta, dir + kMetaFile));
  FAIREM_RETURN_NOT_OK(WriteCsvFile(dataset.table_a, dir + kTableAFile));
  FAIREM_RETURN_NOT_OK(WriteCsvFile(dataset.table_b, dir + kTableBFile));
  FAIREM_RETURN_NOT_OK(SavePairs(dataset.train, dir + "/train.csv"));
  FAIREM_RETURN_NOT_OK(SavePairs(dataset.valid, dir + "/valid.csv"));
  FAIREM_RETURN_NOT_OK(SavePairs(dataset.test, dir + "/test.csv"));
  return Status::OK();
}

Result<EMDataset> LoadDataset(const std::string& dir) {
  FAIREM_FAILPOINT("dataset_load");
  EMDataset ds;
  FAIREM_ASSIGN_OR_RETURN(Table meta, ReadCsvFile(dir + kMetaFile, "meta"));
  if (meta.schema().num_attributes() != 2) {
    return Status::InvalidArgument(
        "metadata file " + dir + kMetaFile +
        " must have 2 columns (key, value), got " +
        std::to_string(meta.schema().num_attributes()));
  }
  for (size_t r = 0; r < meta.num_rows(); ++r) {
    FAIREM_ASSIGN_OR_RETURN(std::string_view key_cell, meta.At(r, 0));
    FAIREM_ASSIGN_OR_RETURN(std::string_view value_cell, meta.At(r, 1));
    std::string key(key_cell);
    std::string value(value_cell);
    if (key == "name") {
      ds.name = value;
    } else if (key == "sensitive_attr") {
      ds.sensitive_attr = value;
    } else if (key == "sensitive_kind") {
      if (value == "binary") {
        ds.sensitive_kind = SensitiveAttrKind::kBinary;
      } else if (value == "multi_valued") {
        ds.sensitive_kind = SensitiveAttrKind::kMultiValued;
      } else if (value == "setwise") {
        ds.sensitive_kind = SensitiveAttrKind::kSetwise;
      } else {
        return Status::InvalidArgument("unknown sensitive_kind: " + value);
      }
    } else if (key == "setwise_separator") {
      if (value.size() != 1) {
        return Status::InvalidArgument("bad setwise_separator");
      }
      ds.setwise_separator = value[0];
    } else if (key == "default_threshold") {
      if (!ParseDouble(value, &ds.default_threshold)) {
        return Status::InvalidArgument("bad default_threshold");
      }
    } else if (key == "simulated_full_scale_pairs") {
      double v = 0.0;
      if (!ParseDouble(value, &v)) {
        return Status::InvalidArgument("bad simulated_full_scale_pairs");
      }
      ds.simulated_full_scale_pairs = static_cast<size_t>(v);
    } else if (key == "matching_attrs") {
      ds.matching_attrs = Split(value, ';');
    }
  }
  FAIREM_ASSIGN_OR_RETURN(ds.table_a,
                          ReadCsvFile(dir + kTableAFile, "table_a"));
  FAIREM_ASSIGN_OR_RETURN(ds.table_b,
                          ReadCsvFile(dir + kTableBFile, "table_b"));
  FAIREM_ASSIGN_OR_RETURN(ds.train, LoadPairs(dir + "/train.csv"));
  FAIREM_ASSIGN_OR_RETURN(ds.valid, LoadPairs(dir + "/valid.csv"));
  FAIREM_ASSIGN_OR_RETURN(ds.test, LoadPairs(dir + "/test.csv"));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace fairem
