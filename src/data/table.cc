#include "src/data/table.h"

#include "src/util/logging.h"

namespace fairem {

Status Table::Append(Record record) {
  if (record.cells.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "record width does not match schema width in table '" + name_ + "'");
  }
  rows_.push_back(std::move(record));
  return Status::OK();
}

Status Table::AppendValues(int64_t entity_id,
                           std::vector<std::string> values) {
  Record r;
  r.entity_id = entity_id;
  r.cells.reserve(values.size());
  for (auto& v : values) r.cells.emplace_back(std::move(v));
  return Append(std::move(r));
}

std::string_view Table::value(size_t row, size_t col) const {
  FAIREM_CHECK(row < rows_.size(), "row out of range");
  FAIREM_CHECK(col < schema_.num_attributes(), "col out of range");
  const Cell& cell = rows_[row].cells[col];
  if (!cell.has_value()) return {};
  return *cell;
}

bool Table::IsNull(size_t row, size_t col) const {
  FAIREM_CHECK(row < rows_.size(), "row out of range");
  FAIREM_CHECK(col < schema_.num_attributes(), "col out of range");
  return !rows_[row].cells[col].has_value();
}

Result<std::string_view> Table::At(size_t row, size_t col) const {
  if (row >= rows_.size()) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   " out of range in table '" + name_ + "' (" +
                                   std::to_string(rows_.size()) + " rows)");
  }
  if (col >= schema_.num_attributes()) {
    return Status::InvalidArgument(
        "col " + std::to_string(col) + " out of range in table '" + name_ +
        "' (" + std::to_string(schema_.num_attributes()) + " attributes)");
  }
  const Cell& cell = rows_[row].cells[col];
  if (!cell.has_value()) return std::string_view();
  return std::string_view(*cell);
}

Result<std::string> Table::ValueByName(size_t row,
                                       std::string_view attr) const {
  FAIREM_ASSIGN_OR_RETURN(size_t col, schema_.Index(attr));
  return std::string(value(row, col));
}

}  // namespace fairem
