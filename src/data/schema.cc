#include "src/data/schema.h"

namespace fairem {

Result<Schema> Schema::Make(std::vector<std::string> attribute_names) {
  Schema schema;
  for (size_t i = 0; i < attribute_names.size(); ++i) {
    if (attribute_names[i].empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    auto [it, inserted] = schema.index_.emplace(attribute_names[i], i);
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name: " +
                                     attribute_names[i]);
    }
  }
  schema.names_ = std::move(attribute_names);
  return schema;
}

Result<size_t> Schema::Index(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

bool Schema::Contains(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

}  // namespace fairem
