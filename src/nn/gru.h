#ifndef FAIREM_NN_GRU_H_
#define FAIREM_NN_GRU_H_

#include <vector>

#include "src/nn/vecops.h"
#include "src/util/rng.h"

namespace fairem {
namespace nn {

/// A GRU recurrent cell with fixed random weights (echo-state / reservoir
/// style). The recurrent encoders inside the neural matchers use frozen
/// GRUs over "pre-trained" subword embeddings, with all learning done in
/// the downstream MLP head — the standard random-feature approximation of
/// a trained RNN at laptop scale (see DESIGN.md substitutions).
class GruCell {
 public:
  /// Creates a cell mapping `input_dim`-d inputs to `hidden_dim`-d states.
  /// Weights are sampled once from `rng` and never change.
  GruCell(int input_dim, int hidden_dim, Rng* rng);

  int hidden_dim() const { return hidden_dim_; }
  int input_dim() const { return input_dim_; }

  /// One step: h' = GRU(x, h). `x` must have input_dim entries and `h`
  /// hidden_dim entries.
  Vec Step(const Vec& x, const Vec& h) const;

  /// Runs the cell over a sequence from a zero state and returns the final
  /// hidden state; a zero vector for an empty sequence.
  Vec RunFinal(const std::vector<Vec>& sequence) const;

  /// Runs the cell and returns the mean of all hidden states (a smoother
  /// sequence summary); a zero vector for an empty sequence.
  Vec RunMean(const std::vector<Vec>& sequence) const;

 private:
  /// Gate pre-activation: W x + U h + b for gate `g` (0=update, 1=reset,
  /// 2=candidate).
  float GateUnit(int g, int unit, const Vec& x, const Vec& h) const;

  int input_dim_;
  int hidden_dim_;
  // Weights laid out per gate: w_[g] is hidden_dim x input_dim, u_[g] is
  // hidden_dim x hidden_dim, b_[g] is hidden_dim.
  std::vector<float> w_[3];
  std::vector<float> u_[3];
  std::vector<float> b_[3];
};

}  // namespace nn
}  // namespace fairem

#endif  // FAIREM_NN_GRU_H_
