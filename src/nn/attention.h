#ifndef FAIREM_NN_ATTENTION_H_
#define FAIREM_NN_ATTENTION_H_

#include <cstddef>
#include <vector>

#include "src/nn/vecops.h"

namespace fairem {
namespace nn {

/// Scaled dot-product attention of one query over keys/values (keys double
/// as values when `values` is empty, i.e. self-attention read-out). Returns
/// a zero vector of the query's size when there are no keys.
Vec Attend(const Vec& query, const std::vector<Vec>& keys,
           const std::vector<Vec>& values = {});

/// Self-attention pooling: attends with the mean vector as query, returning
/// a weighted summary of `vectors`. The read-out used by the
/// serialize-then-pool (DITTO-style) encoder.
Vec SelfAttentionPool(const std::vector<Vec>& vectors, size_t dim);

/// Soft alignment: for every vector of `a`, its attention mixture over `b`.
/// Returns one aligned vector per element of `a` (the decomposable-attention
/// building block in the DeepMatcher-style encoder).
std::vector<Vec> SoftAlign(const std::vector<Vec>& a,
                           const std::vector<Vec>& b);

/// Mean cosine between `a`'s vectors and their soft alignments in `b`;
/// 1 when both are empty, 0 when exactly one is.
float AlignmentSimilarity(const std::vector<Vec>& a,
                          const std::vector<Vec>& b);

}  // namespace nn
}  // namespace fairem

#endif  // FAIREM_NN_ATTENTION_H_
