#ifndef FAIREM_NN_VECOPS_H_
#define FAIREM_NN_VECOPS_H_

#include <cstddef>
#include <vector>

namespace fairem {
namespace nn {

using Vec = std::vector<float>;

/// Dot product over the common prefix of `a` and `b`.
float Dot(const Vec& a, const Vec& b);

/// L2 norm.
float Norm(const Vec& a);

/// Cosine similarity (0 if either vector is all-zero).
float Cosine(const Vec& a, const Vec& b);

/// a += scale * b (sizes must match).
void Axpy(float scale, const Vec& b, Vec* a);

/// Elementwise a - b.
Vec Sub(const Vec& a, const Vec& b);

/// Elementwise |a - b| averaged (normalized L1 distance).
float MeanAbsDiff(const Vec& a, const Vec& b);

/// In-place softmax; empty input is a no-op.
void SoftmaxInPlace(std::vector<float>* logits);

/// Scales `v` to unit L2 norm (no-op for the zero vector).
void NormalizeInPlace(Vec* v);

/// Mean of a list of equally sized vectors; empty list yields a zero vector
/// of the given dim.
Vec Mean(const std::vector<Vec>& vectors, size_t dim);

}  // namespace nn
}  // namespace fairem

#endif  // FAIREM_NN_VECOPS_H_
