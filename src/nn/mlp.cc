#include "src/nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace fairem {
namespace nn {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void Mlp::InitWeights(int input_dim, Rng* rng) {
  FAIREM_CHECK(input_dim > 0, "Mlp input_dim must be positive");
  shapes_.clear();
  params_.clear();
  std::vector<int> dims;
  dims.push_back(input_dim);
  for (int h : options_.hidden) dims.push_back(h);
  dims.push_back(1);
  size_t offset = 0;
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    LayerShape shape;
    shape.in = dims[l];
    shape.out = dims[l + 1];
    shape.weight_offset = offset;
    offset += static_cast<size_t>(shape.in) * shape.out;
    shape.bias_offset = offset;
    offset += static_cast<size_t>(shape.out);
    shapes_.push_back(shape);
  }
  params_.assign(offset, 0.0);
  for (const auto& shape : shapes_) {
    double scale = std::sqrt(2.0 / shape.in);
    for (int i = 0; i < shape.in * shape.out; ++i) {
      params_[shape.weight_offset + static_cast<size_t>(i)] =
          rng->NextGaussian() * scale;
    }
  }
}

void Mlp::Forward(const std::vector<float>& x,
                  std::vector<std::vector<double>>* activations) const {
  activations->clear();
  std::vector<double> current(x.begin(), x.end());
  current.resize(static_cast<size_t>(shapes_.front().in), 0.0);
  activations->push_back(current);
  for (size_t l = 0; l < shapes_.size(); ++l) {
    const LayerShape& shape = shapes_[l];
    std::vector<double> next(static_cast<size_t>(shape.out), 0.0);
    for (int o = 0; o < shape.out; ++o) {
      double z = params_[shape.bias_offset + static_cast<size_t>(o)];
      const double* w =
          &params_[shape.weight_offset + static_cast<size_t>(o) * shape.in];
      for (int i = 0; i < shape.in; ++i) z += w[i] * current[static_cast<size_t>(i)];
      bool is_output = (l + 1 == shapes_.size());
      next[static_cast<size_t>(o)] = is_output ? z : std::max(0.0, z);
    }
    activations->push_back(next);
    current = next;
  }
}

double Mlp::LossAndGradients(const std::vector<float>& x, int label,
                             std::vector<double>* grad) const {
  FAIREM_CHECK(!shapes_.empty(), "Mlp used before InitWeights");
  std::vector<std::vector<double>> acts;
  Forward(x, &acts);
  double logit = acts.back()[0];
  double p = Sigmoid(logit);
  double y = static_cast<double>(label);
  constexpr double kEps = 1e-12;
  double loss = -(y * std::log(p + kEps) + (1.0 - y) * std::log(1.0 - p + kEps));

  if (grad != nullptr) {
    grad->assign(params_.size(), 0.0);
    // dL/dlogit for sigmoid + BCE.
    std::vector<double> delta = {p - y};
    for (size_t l = shapes_.size(); l-- > 0;) {
      const LayerShape& shape = shapes_[l];
      const std::vector<double>& input = acts[l];
      std::vector<double> prev_delta(static_cast<size_t>(shape.in), 0.0);
      for (int o = 0; o < shape.out; ++o) {
        double d = delta[static_cast<size_t>(o)];
        (*grad)[shape.bias_offset + static_cast<size_t>(o)] += d;
        const size_t wbase =
            shape.weight_offset + static_cast<size_t>(o) * shape.in;
        for (int i = 0; i < shape.in; ++i) {
          (*grad)[wbase + static_cast<size_t>(i)] +=
              d * input[static_cast<size_t>(i)];
          prev_delta[static_cast<size_t>(i)] +=
              d * params_[wbase + static_cast<size_t>(i)];
        }
      }
      if (l > 0) {
        // ReLU derivative of the previous layer's activations.
        for (int i = 0; i < shape.in; ++i) {
          if (acts[l][static_cast<size_t>(i)] <= 0.0) {
            prev_delta[static_cast<size_t>(i)] = 0.0;
          }
        }
      }
      delta = prev_delta;
    }
  }
  return loss;
}

Status Mlp::Fit(const std::vector<std::vector<float>>& x,
                const std::vector<int>& y, Rng* rng) {
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  const int input_dim = static_cast<int>(x[0].size());
  if (input_dim == 0) return Status::InvalidArgument("zero-dim features");
  InitWeights(input_dim, rng);

  std::vector<double> m(params_.size(), 0.0);
  std::vector<double> v(params_.size(), 0.0);
  std::vector<double> grad;
  std::vector<double> batch_grad(params_.size(), 0.0);
  std::vector<size_t> order(x.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? positives : negatives).push_back(i);
  }
  const bool balanced = options_.positive_fraction > 0.0 &&
                        !positives.empty() && !negatives.empty();

  const size_t batch =
      std::max<size_t>(1, static_cast<size_t>(options_.batch_size));
  int64_t t = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t start = 0; start < x.size(); start += batch) {
      size_t end = std::min(x.size(), start + batch);
      std::fill(batch_grad.begin(), batch_grad.end(), 0.0);
      for (size_t k = start; k < end; ++k) {
        size_t i;
        if (balanced) {
          const std::vector<size_t>& pool =
              rng->NextBool(options_.positive_fraction) ? positives
                                                        : negatives;
          i = pool[static_cast<size_t>(rng->NextBounded(pool.size()))];
        } else {
          i = order[k];
        }
        LossAndGradients(x[i], y[i], &grad);
        for (size_t p = 0; p < params_.size(); ++p) batch_grad[p] += grad[p];
      }
      double inv = 1.0 / static_cast<double>(end - start);
      ++t;
      double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t));
      double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t));
      for (size_t p = 0; p < params_.size(); ++p) {
        double g = batch_grad[p] * inv + options_.l2 * params_[p];
        m[p] = options_.beta1 * m[p] + (1.0 - options_.beta1) * g;
        v[p] = options_.beta2 * v[p] + (1.0 - options_.beta2) * g * g;
        double m_hat = m[p] / bc1;
        double v_hat = v[p] / bc2;
        params_[p] -=
            options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.eps);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double Mlp::Predict(const std::vector<float>& x) const {
  FAIREM_CHECK(!shapes_.empty(), "Mlp::Predict before Fit/InitWeights");
  std::vector<std::vector<double>> acts;
  Forward(x, &acts);
  return Sigmoid(acts.back()[0]);
}

}  // namespace nn
}  // namespace fairem
