#ifndef FAIREM_NN_MLP_H_
#define FAIREM_NN_MLP_H_

#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {
namespace nn {

/// Hyper-parameters of the trainable classification head.
struct MlpOptions {
  std::vector<int> hidden = {16};
  int epochs = 60;
  int batch_size = 16;
  double learning_rate = 0.01;
  double l2 = 1e-5;
  /// Adam moments.
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Draw mini-batches with this positive-class probability (oversampling,
  /// as the paper's neural systems rely on under EM's extreme class
  /// imbalance, §3.5). 0.5 = fully balanced; <= 0 disables oversampling.
  /// The default partially re-balances: enough gradient signal for the
  /// rare matches without shifting the 0.5 decision threshold to a
  /// balanced prior.
  double positive_fraction = 0.35;
};

/// A small fully connected network: ReLU hidden layers and a sigmoid output
/// unit, trained with Adam on binary cross-entropy. This is the trainable
/// head shared by all neural matchers; their architecture-specific encoders
/// produce its input comparison vector.
class Mlp {
 public:
  explicit Mlp(MlpOptions options = {}) : options_(options) {}

  /// Initializes parameters for `input_dim` features (He-scaled) and trains
  /// on the given examples.
  Status Fit(const std::vector<std::vector<float>>& x,
             const std::vector<int>& y, Rng* rng);

  /// Sigmoid output in [0, 1]; requires a successful Fit (or InitWeights).
  double Predict(const std::vector<float>& x) const;

  /// Initializes parameters without training (exposed for gradient-check
  /// tests).
  void InitWeights(int input_dim, Rng* rng);

  /// BCE loss and parameter gradients for one example (exposed for
  /// gradient-check tests). Gradient layout matches params().
  double LossAndGradients(const std::vector<float>& x, int label,
                          std::vector<double>* grad) const;

  /// Flat view of all parameters (weights then biases per layer).
  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }

  bool fitted() const { return fitted_; }

 private:
  struct LayerShape {
    int in = 0;
    int out = 0;
    size_t weight_offset = 0;
    size_t bias_offset = 0;
  };

  /// Forward pass storing activations per layer.
  void Forward(const std::vector<float>& x,
               std::vector<std::vector<double>>* activations) const;

  MlpOptions options_;
  std::vector<LayerShape> shapes_;
  std::vector<double> params_;
  bool fitted_ = false;
};

}  // namespace nn
}  // namespace fairem

#endif  // FAIREM_NN_MLP_H_
