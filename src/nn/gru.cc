#include "src/nn/gru.h"

#include <cmath>

#include "src/util/logging.h"

namespace fairem {
namespace nn {
namespace {

float SigmoidF(float z) {
  return 1.0f / (1.0f + std::exp(-z));
}

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  FAIREM_CHECK(input_dim > 0 && hidden_dim > 0, "GruCell dims must be > 0");
  const double w_scale = 1.0 / std::sqrt(static_cast<double>(input_dim));
  // Spectral-radius-ish scaling keeps the reservoir dynamics stable.
  const double u_scale = 0.9 / std::sqrt(static_cast<double>(hidden_dim));
  for (int g = 0; g < 3; ++g) {
    w_[g].resize(static_cast<size_t>(hidden_dim) * input_dim);
    u_[g].resize(static_cast<size_t>(hidden_dim) * hidden_dim);
    b_[g].assign(static_cast<size_t>(hidden_dim), 0.0f);
    for (auto& v : w_[g]) v = static_cast<float>(rng->NextGaussian() * w_scale);
    for (auto& v : u_[g]) v = static_cast<float>(rng->NextGaussian() * u_scale);
  }
}

float GruCell::GateUnit(int g, int unit, const Vec& x, const Vec& h) const {
  float z = b_[g][static_cast<size_t>(unit)];
  const float* w = &w_[g][static_cast<size_t>(unit) * input_dim_];
  for (int i = 0; i < input_dim_; ++i) z += w[i] * x[static_cast<size_t>(i)];
  const float* u = &u_[g][static_cast<size_t>(unit) * hidden_dim_];
  for (int i = 0; i < hidden_dim_; ++i) z += u[i] * h[static_cast<size_t>(i)];
  return z;
}

Vec GruCell::Step(const Vec& x, const Vec& h) const {
  FAIREM_CHECK(static_cast<int>(x.size()) == input_dim_, "GRU input dim");
  FAIREM_CHECK(static_cast<int>(h.size()) == hidden_dim_, "GRU hidden dim");
  Vec out(static_cast<size_t>(hidden_dim_));
  // Compute reset-gated hidden first.
  Vec reset_h(static_cast<size_t>(hidden_dim_));
  for (int u = 0; u < hidden_dim_; ++u) {
    float r = SigmoidF(GateUnit(1, u, x, h));
    reset_h[static_cast<size_t>(u)] = r * h[static_cast<size_t>(u)];
  }
  for (int u = 0; u < hidden_dim_; ++u) {
    float z = SigmoidF(GateUnit(0, u, x, h));
    float cand = std::tanh(GateUnit(2, u, x, reset_h));
    out[static_cast<size_t>(u)] =
        (1.0f - z) * h[static_cast<size_t>(u)] + z * cand;
  }
  return out;
}

Vec GruCell::RunFinal(const std::vector<Vec>& sequence) const {
  Vec h(static_cast<size_t>(hidden_dim_), 0.0f);
  for (const Vec& x : sequence) h = Step(x, h);
  return h;
}

Vec GruCell::RunMean(const std::vector<Vec>& sequence) const {
  Vec h(static_cast<size_t>(hidden_dim_), 0.0f);
  Vec acc(static_cast<size_t>(hidden_dim_), 0.0f);
  if (sequence.empty()) return acc;
  for (const Vec& x : sequence) {
    h = Step(x, h);
    for (int u = 0; u < hidden_dim_; ++u) {
      acc[static_cast<size_t>(u)] += h[static_cast<size_t>(u)];
    }
  }
  float inv = 1.0f / static_cast<float>(sequence.size());
  for (float& v : acc) v *= inv;
  return acc;
}

}  // namespace nn
}  // namespace fairem
