#include "src/nn/vecops.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace fairem {
namespace nn {

float Dot(const Vec& a, const Vec& b) {
  size_t n = std::min(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

float Cosine(const Vec& a, const Vec& b) {
  float na = Norm(a);
  float nb = Norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b) / (na * nb);
}

void Axpy(float scale, const Vec& b, Vec* a) {
  FAIREM_CHECK(a->size() == b.size(), "Axpy size mismatch");
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += scale * b[i];
}

Vec Sub(const Vec& a, const Vec& b) {
  FAIREM_CHECK(a.size() == b.size(), "Sub size mismatch");
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

float MeanAbsDiff(const Vec& a, const Vec& b) {
  FAIREM_CHECK(a.size() == b.size(), "MeanAbsDiff size mismatch");
  if (a.empty()) return 0.0f;
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<float>(a.size());
}

void SoftmaxInPlace(std::vector<float>* logits) {
  if (logits->empty()) return;
  float max_logit = *std::max_element(logits->begin(), logits->end());
  float sum = 0.0f;
  for (float& v : *logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (float& v : *logits) v /= sum;
}

void NormalizeInPlace(Vec* v) {
  float n = Norm(*v);
  if (n == 0.0f) return;
  for (float& x : *v) x /= n;
}

Vec Mean(const std::vector<Vec>& vectors, size_t dim) {
  Vec out(dim, 0.0f);
  if (vectors.empty()) return out;
  for (const Vec& v : vectors) {
    FAIREM_CHECK(v.size() == dim, "Mean dim mismatch");
    for (size_t i = 0; i < dim; ++i) out[i] += v[i];
  }
  float inv = 1.0f / static_cast<float>(vectors.size());
  for (float& x : out) x *= inv;
  return out;
}

}  // namespace nn
}  // namespace fairem
