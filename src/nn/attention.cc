#include "src/nn/attention.h"

#include <cmath>

namespace fairem {
namespace nn {

Vec Attend(const Vec& query, const std::vector<Vec>& keys,
           const std::vector<Vec>& values) {
  if (keys.empty()) return Vec(query.size(), 0.0f);
  const std::vector<Vec>& vals = values.empty() ? keys : values;
  std::vector<float> logits(keys.size());
  float scale = 1.0f / std::sqrt(static_cast<float>(query.size()));
  for (size_t i = 0; i < keys.size(); ++i) {
    logits[i] = Dot(query, keys[i]) * scale;
  }
  SoftmaxInPlace(&logits);
  Vec out(vals[0].size(), 0.0f);
  for (size_t i = 0; i < vals.size(); ++i) {
    Axpy(logits[i], vals[i], &out);
  }
  return out;
}

Vec SelfAttentionPool(const std::vector<Vec>& vectors, size_t dim) {
  if (vectors.empty()) return Vec(dim, 0.0f);
  Vec query = Mean(vectors, dim);
  return Attend(query, vectors);
}

std::vector<Vec> SoftAlign(const std::vector<Vec>& a,
                           const std::vector<Vec>& b) {
  std::vector<Vec> aligned;
  aligned.reserve(a.size());
  for (const Vec& q : a) {
    aligned.push_back(Attend(q, b));
  }
  return aligned;
}

float AlignmentSimilarity(const std::vector<Vec>& a,
                          const std::vector<Vec>& b) {
  if (a.empty() && b.empty()) return 1.0f;
  if (a.empty() || b.empty()) return 0.0f;
  std::vector<Vec> aligned = SoftAlign(a, b);
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += Cosine(a[i], aligned[i]);
  }
  return acc / static_cast<float>(a.size());
}

}  // namespace nn
}  // namespace fairem
