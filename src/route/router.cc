#include "src/route/router.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/slowlog.h"
#include "src/obs/trace.h"
#include "src/report/grid.h"
#include "src/robust/checkpoint.h"
#include "src/robust/circuit_breaker.h"
#include "src/robust/supervisor.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/durable_file.h"
#include "src/util/io_util.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// SIGHUP latch for live membership reload. sig_atomic_t write is the only
// thing the handler does; the event loop consumes it between poll rounds.
volatile std::sig_atomic_t g_sighup_latch = 0;

void OnSighup(int) { g_sighup_latch = 1; }

void InstallSighupHandler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSighup;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGHUP, &action, nullptr);
}

struct RouteMetrics {
  Counter* accepted;
  Counter* closed;
  Counter* client_disconnects;
  Counter* slow_client_closes;
  Counter* malformed_frames;
  Counter* queries_total;
  Counter* queries_ok;
  Counter* failed_queries;
  Counter* degraded_answers;
  Counter* unroutable_queries;
  Counter* shed_overload;
  Counter* shed_draining;
  Counter* deadline_expired;
  Counter* failovers;
  Counter* rerouted_queries;
  Counter* hedges_started;
  Counter* hedges_won;
  Counter* hedges_lost;
  Counter* health_probes;
  Counter* health_probe_failures;
  Counter* breaker_opens;
  Counter* reloads;
  Counter* responses_dropped;
  Counter* shutdowns;
  Gauge* backends;
  Gauge* backends_usable;
  Gauge* inflight_jobs;
  Gauge* connections;
  Histogram* request_seconds;
  Histogram* backend_call_seconds;

  static RouteMetrics Make() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    RouteMetrics m;
    m.accepted = reg.GetCounter("fairem.route.connections_accepted");
    m.closed = reg.GetCounter("fairem.route.connections_closed");
    m.client_disconnects = reg.GetCounter("fairem.route.client_disconnects");
    m.slow_client_closes = reg.GetCounter("fairem.route.slow_client_closes");
    m.malformed_frames = reg.GetCounter("fairem.route.malformed_frames");
    m.queries_total = reg.GetCounter("fairem.route.queries_total");
    m.queries_ok = reg.GetCounter("fairem.route.queries_ok");
    // A definite non-retryable error delivered to a client. The chaos
    // drill gates on this staying 0 while a backend is killed mid-load.
    m.failed_queries = reg.GetCounter("fairem.route.failed_queries");
    m.degraded_answers = reg.GetCounter("fairem.route.degraded_answers");
    m.unroutable_queries = reg.GetCounter("fairem.route.unroutable_queries");
    m.shed_overload = reg.GetCounter("fairem.route.shed_overload");
    m.shed_draining = reg.GetCounter("fairem.route.shed_draining");
    m.deadline_expired = reg.GetCounter("fairem.route.deadline_expired");
    m.failovers = reg.GetCounter("fairem.route.failovers");
    m.rerouted_queries = reg.GetCounter("fairem.route.rerouted_queries");
    m.hedges_started = reg.GetCounter("fairem.route.hedges_started");
    m.hedges_won = reg.GetCounter("fairem.route.hedges_won");
    m.hedges_lost = reg.GetCounter("fairem.route.hedges_lost");
    m.health_probes = reg.GetCounter("fairem.route.health_probes");
    m.health_probe_failures =
        reg.GetCounter("fairem.route.health_probe_failures");
    m.breaker_opens = reg.GetCounter("fairem.route.breaker_opens");
    m.reloads = reg.GetCounter("fairem.route.reloads");
    m.responses_dropped = reg.GetCounter("fairem.route.responses_dropped");
    m.shutdowns = reg.GetCounter("fairem.route.shutdowns");
    m.backends = reg.GetGauge("fairem.route.backends");
    m.backends_usable = reg.GetGauge("fairem.route.backends_usable");
    m.inflight_jobs = reg.GetGauge("fairem.route.inflight_jobs");
    m.connections = reg.GetGauge("fairem.route.connections");
    m.request_seconds = reg.GetHistogram("fairem.route.request_seconds");
    m.backend_call_seconds =
        reg.GetHistogram("fairem.route.backend_call_seconds");
    return m;
  }
};

struct FrontConnection {
  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_sent = 0;
  double last_activity_s = 0.0;

  bool has_pending_out() const { return out_sent < outbuf.size(); }
};

/// One backend daemon as the router sees it: its breaker, its persistent
/// probe connection, and the last load report it gave.
struct Backend {
  std::string path;
  CircuitBreaker breaker;
  Gauge* state_gauge = nullptr;
  uint64_t opens_seen = 0;

  // Probe connection (persistent, re-established on any failure).
  int fd = -1;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_sent = 0;
  double next_probe_s = 0.0;
  double probe_sent_s = -1.0;  // >= 0 while a probe awaits its reply
  uint64_t probe_id = 0;

  /// Last HLTH reply's serving flag. Optimistic before the first probe so
  /// a cold-started router can route immediately.
  bool serving = true;

  bool has_pending_out() const { return out_sent < outbuf.size(); }
};

/// One request to one backend: its own connection, so cancelling a loser
/// (hedge or failover) is just a close — no shared stream to corrupt.
struct RouteCall {
  int fd = -1;
  std::string backend;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_sent = 0;
  double started_s = 0.0;
  // "router.call" span for this backend attempt; 0 when the job is
  // untraced or the span has already been closed into job.spans.
  uint64_t span_id = 0;
  int64_t started_unix_us = 0;

  bool active() const { return fd >= 0; }
  bool has_pending_out() const { return out_sent < outbuf.size(); }
};

struct RouteJob {
  uint64_t conn_id = 0;
  uint64_t route_id = 0;   // router-side correlation id, all calls share it
  QueryRequest request;    // request.id is the client's correlation id
  std::string key;
  double admitted_s = 0.0;
  double deadline_s = 0.0;  // absolute, monotonic
  std::vector<std::string> tried;
  bool rerouted = false;
  RouteCall primary;
  RouteCall hedge;
  double hedge_at_s = -1.0;  // < 0: hedging disabled for this job
  // Tracing state (DESIGN.md §16); inert when ctx is invalid.
  TraceContext ctx;
  std::string trace_hex;         // cached ctx.TraceIdHex()
  uint64_t request_span_id = 0;  // "router.request" hop span
  int64_t admitted_unix_us = 0;
  std::vector<WireSpan> spans;   // completed router-side spans
};

Result<int> ConnectUnix(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("route: socket path empty or too long: '" +
                                   socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("route: socket failed: ") +
                           std::strerror(errno));
  }
  // Blocking connect: on UNIX sockets it either succeeds immediately or
  // fails immediately (ECONNREFUSED/ENOENT for a dead backend); there is
  // no multi-RTT handshake to stall the event loop on.
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int saved = errno;
    ::close(fd);
    if (saved == ENOENT || saved == ECONNREFUSED || saved == EAGAIN) {
      return Status::Unavailable(std::string("backend not up: ") +
                                 std::strerror(saved));
    }
    return Status::IOError("route: connect('" + socket_path +
                           "') failed: " + std::strerror(saved));
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

class RouteDaemon {
 public:
  explicit RouteDaemon(const RouteOptions& options)
      : options_(options),
        metrics_(RouteMetrics::Make()),
        slowlog_(options.slow_query_log, options.slow_query_ms),
        rng_(0x526f757465ull ^ static_cast<uint64_t>(::getpid())) {}

  ~RouteDaemon() {
    for (auto& [id, conn] : conns_) ::close(conn.fd);
    for (auto& [path, backend] : backends_) {
      if (backend.fd >= 0) ::close(backend.fd);
    }
    for (auto& [id, job] : jobs_) {
      CloseCall(&job.primary);
      CloseCall(&job.hedge);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!options_.socket_path.empty()) {
      ::unlink(options_.socket_path.c_str());
    }
  }

  Status Run() {
    std::vector<std::string> initial = options_.backends;
    if (!options_.backends_file.empty()) {
      Result<std::string> text = ReadFileToString(options_.backends_file);
      if (text.ok()) {
        for (std::string& path : ParseBackendsList(*text)) {
          initial.push_back(std::move(path));
        }
      } else {
        FAIREM_LOG(WARN) << "backends file unreadable at startup"
                         << LogKv("path", options_.backends_file)
                         << LogKv("status", text.status().ToString());
      }
    }
    ApplyBackendSet(initial);
    if (backends_.empty()) {
      return Status::InvalidArgument(
          "route: no backends configured (--backends or --backends_file)");
    }
    FAIREM_RETURN_NOT_OK(Listen());
    FAIREM_LOG(INFO) << "fairem route ready"
                     << LogKv("socket", options_.socket_path)
                     << LogKv("backends", backends_.size());
    while (true) {
      const double now = MonotonicSeconds();
      if (ShutdownGuard::requested() && !draining_) BeginDrain();
      if (g_sighup_latch != 0) {
        g_sighup_latch = 0;
        ReloadBackends();
      }
      ProbeBackends(now);
      StartHedges(now);
      ExpireJobs(now);
      if (draining_ && DrainComplete()) break;
      PollOnce();
      AcceptPending(now);
      PumpFrontConnections();
      PumpBackendProbes();
      PumpCalls();
      CloseSlowClients(now);
      UpdateGauges(now);
    }
    FinishDrain();
    return Status::OK();
  }

 private:
  // ------------------------------------------------------------- sockets --

  Status Listen() {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("route: socket path empty or too long: '" +
                                     options_.socket_path + "'");
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("route: socket failed: ") +
                             std::strerror(errno));
    }
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError("route: bind failed for '" +
                             options_.socket_path +
                             "': " + std::strerror(errno));
    }
    if (::listen(listen_fd_, options_.listen_backlog) != 0) {
      return Status::IOError(std::string("route: listen failed: ") +
                             std::strerror(errno));
    }
    SetNonblocking(listen_fd_);
    return Status::OK();
  }

  static void SetNonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  void PollOnce() {
    std::vector<pollfd> fds;
    fds.reserve(1 + conns_.size() + backends_.size() + 2 * jobs_.size());
    if (!draining_ && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.has_pending_out()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }
    for (auto& [path, backend] : backends_) {
      if (backend.fd < 0) continue;
      short events = POLLIN;
      if (backend.has_pending_out()) events |= POLLOUT;
      fds.push_back({backend.fd, events, 0});
    }
    for (auto& [id, job] : jobs_) {
      for (RouteCall* call : {&job.primary, &job.hedge}) {
        if (!call->active()) continue;
        short events = POLLIN;
        if (call->has_pending_out()) events |= POLLOUT;
        fds.push_back({call->fd, events, 0});
      }
    }
    int timeout_ms = static_cast<int>(options_.poll_interval_s * 1000.0);
    if (timeout_ms < 1) timeout_ms = 1;
    // EINTR (SIGTERM/SIGHUP landing) just re-enters the loop, which checks
    // the latches at the top.
    (void)::poll(fds.empty() ? nullptr : fds.data(),
                 static_cast<nfds_t>(fds.size()), timeout_ms);
  }

  void AcceptPending(double now) {
    if (draining_ || listen_fd_ < 0) return;
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient accept error: retry next loop
      }
      SetNonblocking(fd);
      FrontConnection conn;
      conn.fd = fd;
      conn.id = ++next_conn_id_;
      conn.last_activity_s = now;
      metrics_.accepted->Increment();
      conns_.emplace(conn.id, std::move(conn));
    }
  }

  void CloseConn(uint64_t conn_id) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    ::close(it->second.fd);
    conns_.erase(it);
    metrics_.closed->Increment();
  }

  // ---------------------------------------------------------- membership --

  void ApplyBackendSet(const std::vector<std::string>& paths) {
    std::map<std::string, Backend> next;
    for (const std::string& path : paths) {
      if (path.empty() || next.count(path) != 0) continue;
      auto existing = backends_.find(path);
      if (existing != backends_.end()) {
        // A surviving backend keeps its breaker and probe connection:
        // reload must not forget what we learned about it.
        next.emplace(path, std::move(existing->second));
        backends_.erase(existing);
        continue;
      }
      Backend backend;
      backend.path = path;
      CircuitBreakerOptions breaker;
      breaker.failure_threshold = options_.breaker_failure_threshold;
      breaker.open_cooldown_s = options_.breaker_cooldown_s;
      backend.breaker = CircuitBreaker(breaker);
      backend.state_gauge = MetricsRegistry::Global().GetGauge(
          "fairem.route.backend." + CheckpointStore::SanitizeKey(path) +
          ".state");
      next.emplace(path, std::move(backend));
    }
    // Whatever is left in backends_ was removed: close its probe.
    for (auto& [path, backend] : backends_) {
      if (backend.fd >= 0) ::close(backend.fd);
      if (backend.state_gauge != nullptr) backend.state_gauge->Set(-1.0);
      FAIREM_LOG(INFO) << "backend removed" << LogKv("backend", path);
    }
    backends_ = std::move(next);
  }

  void ReloadBackends() {
    if (options_.backends_file.empty()) {
      FAIREM_LOG(WARN) << "SIGHUP with no --backends_file; membership kept";
      return;
    }
    Result<std::string> text = ReadFileToString(options_.backends_file);
    if (!text.ok()) {
      // Keep serving with the old membership; an operator mid-edit must
      // not be able to empty the fleet with a torn file.
      FAIREM_LOG(WARN) << "backends reload failed"
                       << LogKv("path", options_.backends_file)
                       << LogKv("status", text.status().ToString());
      return;
    }
    std::vector<std::string> paths = ParseBackendsList(*text);
    if (paths.empty()) {
      FAIREM_LOG(WARN) << "backends reload: file lists no backends; kept "
                          "previous membership";
      return;
    }
    ApplyBackendSet(paths);
    metrics_.reloads->Increment();
    FAIREM_LOG(INFO) << "backends reloaded"
                     << LogKv("path", options_.backends_file)
                     << LogKv("backends", backends_.size());
  }

  // ------------------------------------------------------------- probing --

  void ProbeBackends(double now) {
    for (auto& [path, backend] : backends_) {
      if (backend.fd >= 0 && backend.probe_sent_s >= 0.0 &&
          now - backend.probe_sent_s > options_.health_timeout_s) {
        ProbeFailed(backend, now, "probe timeout");
      }
      if (now < backend.next_probe_s) continue;
      ScheduleNextProbe(backend, now);
      if (backend.fd < 0) {
        // Probes ignore the breaker on purpose: they are how an open
        // breaker ever finds out the backend recovered.
        Result<int> fd = ConnectUnix(backend.path);
        metrics_.health_probes->Increment();
        if (!fd.ok()) {
          metrics_.health_probe_failures->Increment();
          RecordBackendFailure(backend, now);
          continue;
        }
        backend.fd = *fd;
        backend.decoder = FrameDecoder();
        backend.outbuf.clear();
        backend.out_sent = 0;
      } else {
        if (backend.probe_sent_s >= 0.0) continue;  // previous still out
        metrics_.health_probes->Increment();
      }
      HealthReport probe;
      probe.probe = true;
      probe.id = ++probe_sequence_;
      backend.probe_id = probe.id;
      backend.probe_sent_s = now;
      backend.outbuf.append(
          EncodeServeMessage(kFrameHealth, SerializeHealthReport(probe)));
      FlushBackend(backend, now);
    }
  }

  void ScheduleNextProbe(Backend& backend, double now) {
    backend.next_probe_s =
        now + options_.health_period_s * rng_.NextDouble(0.5, 1.5);
  }

  void ProbeFailed(Backend& backend, double now, const char* reason) {
    FAIREM_LOG(WARN) << "health probe failed"
                     << LogKv("backend", backend.path)
                     << LogKv("reason", reason);
    metrics_.health_probe_failures->Increment();
    if (backend.fd >= 0) ::close(backend.fd);
    backend.fd = -1;
    backend.decoder = FrameDecoder();
    backend.outbuf.clear();
    backend.out_sent = 0;
    backend.probe_sent_s = -1.0;
    RecordBackendFailure(backend, now);
  }

  void FlushBackend(Backend& backend, double now) {
    while (backend.has_pending_out()) {
      ssize_t n = ::write(backend.fd, backend.outbuf.data() + backend.out_sent,
                          backend.outbuf.size() - backend.out_sent);
      if (n > 0) {
        backend.out_sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      ProbeFailed(backend, now, "probe write failed");
      return;
    }
    if (!backend.has_pending_out()) {
      backend.outbuf.clear();
      backend.out_sent = 0;
    }
  }

  void PumpBackendProbes() {
    const double now = MonotonicSeconds();
    for (auto& [path, backend] : backends_) {
      if (backend.fd < 0) continue;
      FlushBackend(backend, now);
      if (backend.fd < 0) continue;
      char buf[4096];
      bool closed_by_peer = false;
      for (;;) {
        ssize_t n = ::read(backend.fd, buf, sizeof(buf));
        if (n > 0) {
          backend.decoder.Feed(buf, static_cast<size_t>(n));
          continue;
        }
        if (n == 0) {
          closed_by_peer = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        closed_by_peer = true;
        break;
      }
      for (;;) {
        ServeMessage message;
        Result<FrameDecoder::Next> next = backend.decoder.TryNext(&message);
        if (!next.ok()) {
          ProbeFailed(backend, now, "malformed probe reply");
          break;
        }
        if (*next == FrameDecoder::Next::kNeedMore) break;
        if (message.type != kFrameHealth) continue;  // stray frame: ignore
        Result<HealthReport> report = ParseHealthReport(message.bytes);
        if (!report.ok() || report->id != backend.probe_id) continue;
        backend.probe_sent_s = -1.0;
        backend.serving = report->serving;
        // Transport-wise the backend is alive; a draining backend is
        // excluded by the serving flag, not the breaker.
        RecordBackendSuccess(backend, now);
      }
      if (closed_by_peer && backend.fd >= 0) {
        ProbeFailed(backend, now, "probe connection closed");
      }
    }
  }

  // ------------------------------------------------------------ breakers --

  void RecordBackendFailure(Backend& backend, double now) {
    backend.breaker.RecordFailure(now);
    const uint64_t opened = backend.breaker.times_opened();
    if (opened > backend.opens_seen) {
      metrics_.breaker_opens->Increment(opened - backend.opens_seen);
      backend.opens_seen = opened;
      FAIREM_LOG(WARN) << "circuit breaker opened"
                       << LogKv("backend", backend.path)
                       << LogKv("failures",
                                backend.breaker.consecutive_failures());
    }
  }

  void RecordBackendSuccess(Backend& backend, double now) {
    backend.breaker.RecordSuccess(now);
  }

  Backend* FindBackend(const std::string& path) {
    auto it = backends_.find(path);
    return it == backends_.end() ? nullptr : &it->second;
  }

  // ------------------------------------------------------------- inbound --

  void PumpFrontConnections() {
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (auto& [id, conn] : conns_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      ReadConn(it->second);
      it = conns_.find(id);
      if (it != conns_.end()) FlushConn(it->second);
    }
  }

  void ReadConn(FrontConnection& conn) {
    char buf[65536];
    bool closed_by_peer = false;
    for (;;) {
      ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.last_activity_s = MonotonicSeconds();
        conn.decoder.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        closed_by_peer = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      closed_by_peer = true;
      break;
    }
    const uint64_t conn_id = conn.id;
    for (;;) {
      ServeMessage message;
      Result<FrameDecoder::Next> next = conn.decoder.TryNext(&message);
      if (!next.ok()) {
        metrics_.malformed_frames->Increment();
        FAIREM_LOG(WARN) << "closing connection on malformed frame"
                         << LogKv("conn", conn_id)
                         << LogKv("status", next.status().ToString());
        CloseConn(conn_id);
        return;
      }
      if (*next == FrameDecoder::Next::kNeedMore) break;
      HandleMessage(conn_id, message);
      if (conns_.find(conn_id) == conns_.end()) return;
    }
    if (closed_by_peer) {
      metrics_.client_disconnects->Increment();
      CloseConn(conn_id);
    }
  }

  void HandleMessage(uint64_t conn_id, const ServeMessage& message) {
    if (message.type == kFrameHealth) {
      HandleHealthProbe(conn_id, message);
      return;
    }
    if (message.type == kFrameProgress) {
      // PROG is advisory and flows toward clients; a stray one arriving on
      // the front socket is a confused-but-harmless peer. Ignore it.
      return;
    }
    metrics_.queries_total->Increment();
    if (message.type != kFrameQueryRequest) {
      metrics_.malformed_frames->Increment();
      CloseConn(conn_id);
      return;
    }
    Result<QueryRequest> request = ParseQueryRequest(message.bytes);
    if (!request.ok()) {
      QueryResponse response;
      response.status = request.status();
      Respond(conn_id, response);
      return;
    }
    QueryResponse response;
    response.id = request->id;
    if (request->op == "ping") {
      response.payload = "pong";
      Respond(conn_id, response);
      return;
    }
    if (request->op == "stats") {
      // The router's own metrics: `fairem query <router> stats` shows
      // fairem.route.*, the same way a daemon shows fairem.serve.*.
      UpdateGauges(MonotonicSeconds());
      response.payload =
          MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot());
      Respond(conn_id, response);
      return;
    }
    AdmitRoutedQuery(conn_id, *request);
  }

  void HandleHealthProbe(uint64_t conn_id, const ServeMessage& message) {
    Result<HealthReport> probe = ParseHealthReport(message.bytes);
    HealthReport reply;
    if (probe.ok()) reply.id = probe->id;
    reply.serving = !draining_ && UsableBackendCount(MonotonicSeconds()) > 0;
    reply.queue_depth = static_cast<double>(jobs_.size());
    reply.inflight = static_cast<double>(jobs_.size());
    reply.retry_after_s = CurrentRetryAfterS();
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    it->second.outbuf.append(
        EncodeServeMessage(kFrameHealth, SerializeHealthReport(reply)));
    FlushConn(it->second);
  }

  double CurrentRetryAfterS() const {
    return LoadAwareRetryAfterS(options_.retry_after_s,
                                static_cast<int>(jobs_.size()),
                                options_.max_inflight_jobs, 0, 0);
  }

  int UsableBackendCount(double now) {
    int usable = 0;
    for (auto& [path, backend] : backends_) {
      if (backend.serving &&
          backend.breaker.state(now) != CircuitBreaker::State::kOpen) {
        ++usable;
      }
    }
    return usable;
  }

  // -------------------------------------------------------------- routing --

  /// A one-shot router-side span for queries refused without a RouteJob
  /// (sheds): even a refused query shows its hop in the client's trace.
  static void AttachAdHocSpan(const QueryRequest& request,
                              QueryResponse* response, const char* outcome) {
    if (!request.trace.valid()) return;
    WireSpan span;
    span.name = "router.request";
    span.process = "router";
    span.pid = static_cast<int64_t>(::getpid());
    span.span_id = NewSpanId();
    span.parent_span_id = request.trace.parent_span_id;
    span.start_unix_us = UnixMicrosNow();
    span.annotations.emplace_back("outcome", outcome);
    response->spans.push_back(std::move(span));
  }

  void AdmitRoutedQuery(uint64_t conn_id, const QueryRequest& request) {
    QueryResponse response;
    response.id = request.id;
    if (draining_) {
      metrics_.shed_draining->Increment();
      response.status = Status::Unavailable("router draining; retry later");
      response.retry_after_s = options_.retry_after_s;
      AttachAdHocSpan(request, &response, "shed_draining");
      Respond(conn_id, response);
      return;
    }
    if (static_cast<int>(jobs_.size()) >= options_.max_inflight_jobs) {
      metrics_.shed_overload->Increment();
      response.status = Status::Unavailable("router at capacity");
      response.retry_after_s = CurrentRetryAfterS();
      AttachAdHocSpan(request, &response, "shed_overload");
      Respond(conn_id, response);
      return;
    }
    const double now = MonotonicSeconds();
    double deadline_s = request.deadline_s > 0.0
                            ? std::min(request.deadline_s,
                                       options_.max_deadline_s)
                            : options_.default_deadline_s;
    RouteJob job;
    job.conn_id = conn_id;
    job.route_id = ++route_sequence_;
    job.request = request;
    job.key = request.dataset + "." + request.mode + "." + request.matcher;
    job.admitted_s = now;
    job.deadline_s = now + deadline_s;
    if (request.trace.valid()) {
      job.ctx = request.trace;
      job.trace_hex = request.trace.TraceIdHex();
      // Pre-minted so backend calls can parent under it before the hop
      // span itself closes in FinishRoutedJob.
      job.request_span_id = NewSpanId();
      job.admitted_unix_us = UnixMicrosNow();
    }
    if (options_.hedge) job.hedge_at_s = now + HedgeDelay();
    if (!Dispatch(job, &job.primary, now)) {
      FinishUnroutable(job);
      return;
    }
    jobs_.emplace(job.route_id, std::move(job));
  }

  /// Rendezvous pick: the highest-ranked backend for the job's key that is
  /// serving, not already tried, and whose breaker admits a request.
  std::string PickBackend(const RouteJob& job, double now) {
    std::vector<std::pair<uint64_t, Backend*>> ranked;
    ranked.reserve(backends_.size());
    for (auto& [path, backend] : backends_) {
      if (!backend.serving) continue;
      if (std::find(job.tried.begin(), job.tried.end(), path) !=
          job.tried.end()) {
        continue;
      }
      ranked.emplace_back(RendezvousRank(job.key, path), &backend);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (auto& [rank, backend] : ranked) {
      // AllowRequest claims a half-open probe slot, so only consult it for
      // the backend we would actually use.
      if (backend->breaker.AllowRequest(now)) return backend->path;
    }
    return std::string();
  }

  /// Starts `job`'s next attempt on the best untried backend. False when
  /// every candidate is exhausted (`call` left inactive).
  bool Dispatch(RouteJob& job, RouteCall* call, double now) {
    while (true) {
      std::string target = PickBackend(job, now);
      if (target.empty()) return false;
      job.tried.push_back(target);
      Result<int> fd = ConnectUnix(target);
      if (!fd.ok()) {
        if (Backend* backend = FindBackend(target)) {
          RecordBackendFailure(*backend, now);
        }
        AppendFailoverSpan(job, target, call == &job.hedge,
                           "connect_failed");
        metrics_.failovers->Increment();
        continue;
      }
      call->fd = *fd;
      call->backend = target;
      call->decoder = FrameDecoder();
      call->outbuf.clear();
      call->out_sent = 0;
      call->started_s = now;
      QueryRequest forwarded = job.request;
      forwarded.id = job.route_id;
      // The backend should only work as long as the client will still be
      // listening: forward the remaining budget, not the original.
      forwarded.deadline_s = std::max(0.001, job.deadline_s - now);
      if (job.ctx.valid()) {
        // Re-parent the context so the backend's spans hang under this
        // specific call — a hedge and its primary stay distinguishable.
        call->span_id = NewSpanId();
        call->started_unix_us = UnixMicrosNow();
        forwarded.trace.parent_span_id = call->span_id;
      }
      call->outbuf.append(EncodeServeMessage(
          kFrameQueryRequest, SerializeQueryRequest(forwarded)));
      FlushCall(*call);
      return true;
    }
  }

  double HedgeDelay() {
    double delay = options_.hedge_min_delay_s;
    // Until the histogram has seen enough calls the quantile estimate is
    // noise; stay on the floor.
    if (metrics_.backend_call_seconds->count() >= 20) {
      delay = std::max(delay,
                       options_.hedge_delay_factor *
                           metrics_.backend_call_seconds->Quantile(
                               options_.hedge_quantile));
    }
    return delay;
  }

  void StartHedges(double now) {
    for (auto& [id, job] : jobs_) {
      if (job.hedge_at_s < 0.0 || now < job.hedge_at_s) continue;
      if (job.hedge.active() || !job.primary.active()) continue;
      job.hedge_at_s = -1.0;  // one hedge per job
      if (Dispatch(job, &job.hedge, now)) {
        metrics_.hedges_started->Increment();
      }
    }
  }

  // ------------------------------------------------------- call lifecycle --

  void CloseCall(RouteCall* call) {
    if (call->fd >= 0) ::close(call->fd);
    call->fd = -1;
    call->outbuf.clear();
    call->out_sent = 0;
  }

  /// Forwards a backend's advisory PROG frame to the job's client, with
  /// the correlation id rewritten from the router's to the client's.
  void ForwardProgress(RouteJob& job, const std::string& bytes) {
    Result<ProgressUpdate> update = ParseProgressUpdate(bytes);
    if (!update.ok() || update->id != job.route_id) return;
    auto it = conns_.find(job.conn_id);
    if (it == conns_.end()) return;
    ProgressUpdate forwarded = *update;
    forwarded.id = job.request.id;
    if (forwarded.trace_id.empty()) forwarded.trace_id = job.trace_hex;
    it->second.outbuf.append(EncodeServeMessage(
        kFrameProgress, SerializeProgressUpdate(forwarded)));
    FlushConn(it->second);
  }

  /// Pump one call's IO. Returns 0 while pending, +1 with *out filled on a
  /// definite answer, -1 on transport failure or a backend kUnavailable
  /// (both mean: try another backend).
  int PumpCall(RouteCall& call, RouteJob& job, QueryResponse* out) {
    FlushCall(call);
    if (!call.active()) return -1;
    char buf[65536];
    bool closed_by_peer = false;
    for (;;) {
      ssize_t n = ::read(call.fd, buf, sizeof(buf));
      if (n > 0) {
        call.decoder.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        closed_by_peer = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      closed_by_peer = true;
      break;
    }
    for (;;) {
      ServeMessage message;
      Result<FrameDecoder::Next> next = call.decoder.TryNext(&message);
      if (!next.ok()) return -1;
      if (*next == FrameDecoder::Next::kNeedMore) break;
      if (message.type == kFrameProgress) {
        ForwardProgress(job, message.bytes);
        continue;
      }
      if (message.type != kFrameQueryResponse) continue;
      Result<QueryResponse> response = ParseQueryResponse(message.bytes);
      if (!response.ok()) return -1;
      if (response->id != job.route_id) return -1;
      // A backend shed/drain is the router's cue to fail over, exactly
      // like a dead backend — the client never sees it.
      if (!response->status.ok() && response->status.IsUnavailable()) {
        return -1;
      }
      *out = std::move(*response);
      return 1;
    }
    return closed_by_peer ? -1 : 0;
  }

  void FlushCall(RouteCall& call) {
    while (call.has_pending_out()) {
      ssize_t n = ::write(call.fd, call.outbuf.data() + call.out_sent,
                          call.outbuf.size() - call.out_sent);
      if (n > 0) {
        call.out_sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      CloseCall(&call);  // EPIPE and friends: the backend went away
      return;
    }
  }

  void PumpCalls() {
    const double now = MonotonicSeconds();
    std::vector<uint64_t> ids;
    ids.reserve(jobs_.size());
    for (auto& [id, job] : jobs_) ids.push_back(id);
    for (uint64_t id : ids) {
      for (bool is_hedge : {false, true}) {
        auto jt = jobs_.find(id);
        if (jt == jobs_.end()) break;
        RouteCall& call = is_hedge ? jt->second.hedge : jt->second.primary;
        if (!call.active()) continue;
        QueryResponse response;
        int outcome = PumpCall(call, jt->second, &response);
        if (outcome == 0) continue;
        if (outcome > 0) {
          OnCallAnswered(jt->second, is_hedge, std::move(response), now);
          jobs_.erase(id);
          break;
        }
        OnCallFailed(jt->second, is_hedge, now);
      }
    }
  }

  /// Closes `call`'s "router.call" span into job.spans with the given
  /// outcome. Safe to call on an untraced or already-closed call (no-op).
  void FinishCallSpan(RouteJob& job, RouteCall& call, bool is_hedge,
                      const char* outcome) {
    if (!job.ctx.valid() || call.span_id == 0) return;
    WireSpan span;
    span.name = "router.call";
    span.process = "router";
    span.pid = static_cast<int64_t>(::getpid());
    span.span_id = call.span_id;
    span.parent_span_id = job.request_span_id;
    span.start_unix_us = call.started_unix_us;
    const int64_t now_us = UnixMicrosNow();
    span.duration_us =
        now_us > call.started_unix_us ? now_us - call.started_unix_us : 0;
    span.annotations.emplace_back("backend", call.backend);
    span.annotations.emplace_back("hedge", is_hedge ? "true" : "false");
    span.annotations.emplace_back("outcome", outcome);
    job.spans.push_back(std::move(span));
    call.span_id = 0;
  }

  /// Finalizes a routed query: closes the "router.request" hop span onto
  /// the response (ahead of the backend's own spans, which `response` may
  /// already carry), feeds the slow-query log, and responds to the client.
  void FinishRoutedJob(RouteJob& job, QueryResponse& response, double now,
                       const char* outcome) {
    const double total_s = now - job.admitted_s;
    metrics_.request_seconds->ObserveWithExemplar(total_s, job.trace_hex);
    if (job.ctx.valid()) {
      WireSpan root;
      root.name = "router.request";
      root.process = "router";
      root.pid = static_cast<int64_t>(::getpid());
      root.span_id = job.request_span_id;
      root.parent_span_id = job.ctx.parent_span_id;
      root.start_unix_us = job.admitted_unix_us;
      const int64_t now_us = UnixMicrosNow();
      root.duration_us = now_us > job.admitted_unix_us
                             ? now_us - job.admitted_unix_us
                             : 0;
      root.annotations.emplace_back("key", job.key);
      root.annotations.emplace_back("outcome", outcome);
      root.annotations.emplace_back("backends_tried",
                                    std::to_string(job.tried.size()));
      response.spans.push_back(std::move(root));
      response.spans.insert(response.spans.end(), job.spans.begin(),
                            job.spans.end());
    }
    if (slowlog_.enabled()) {
      SlowQueryEvent event;
      event.process = "router";
      event.trace_id = job.trace_hex;
      event.id = job.request.id;
      event.op = job.request.op;
      event.key = job.key;
      event.status = response.status.ok()
                         ? "OK"
                         : StatusCodeToString(response.status.code());
      event.total_ms = total_s * 1000.0;
      event.spans = response.spans;
      slowlog_.MaybeLog(event, now);
    }
    Respond(job.conn_id, response);
  }

  void OnCallAnswered(RouteJob& job, bool is_hedge, QueryResponse response,
                      double now) {
    RouteCall& winner = is_hedge ? job.hedge : job.primary;
    RouteCall& loser = is_hedge ? job.primary : job.hedge;
    if (Backend* backend = FindBackend(winner.backend)) {
      RecordBackendSuccess(*backend, now);
    }
    metrics_.backend_call_seconds->Observe(now - winner.started_s);
    const bool hedge_won = is_hedge;
    if (is_hedge) {
      metrics_.hedges_won->Increment();
    } else if (loser.active()) {
      metrics_.hedges_lost->Increment();
    }
    FinishCallSpan(job, winner, is_hedge, "answered");
    FinishCallSpan(job, loser, !is_hedge, "cancelled");
    // The loser's answer no longer matters; cancellation is a close. Its
    // outcome is unknown, so its breaker is left alone.
    CloseCall(&loser);
    CloseCall(&winner);
    response.id = job.request.id;
    FinishRoutedJob(job, response, now,
                    hedge_won ? "hedge_won" : "primary_won");
  }

  /// The failover decision itself, as an instant span: a connected trace
  /// shows not just the failed call but the moment the router moved on
  /// from it. `reason` distinguishes a call that died mid-flight
  /// ("call_failed") from a backend that refused the connection outright
  /// ("connect_failed", e.g. a SIGKILLed daemon's stale socket).
  void AppendFailoverSpan(RouteJob& job, const std::string& from_backend,
                          bool is_hedge, const char* reason) {
    if (!job.ctx.valid()) return;
    WireSpan failover;
    failover.name = "router.failover";
    failover.process = "router";
    failover.pid = static_cast<int64_t>(::getpid());
    failover.span_id = NewSpanId();
    failover.parent_span_id = job.request_span_id;
    failover.start_unix_us = UnixMicrosNow();
    failover.annotations.emplace_back("from_backend", from_backend);
    failover.annotations.emplace_back("reason", reason);
    failover.annotations.emplace_back("hedge", is_hedge ? "true" : "false");
    job.spans.push_back(std::move(failover));
  }

  void OnCallFailed(RouteJob& job, bool is_hedge, double now) {
    RouteCall& failed = is_hedge ? job.hedge : job.primary;
    if (Backend* backend = FindBackend(failed.backend)) {
      RecordBackendFailure(*backend, now);
    }
    FinishCallSpan(job, failed, is_hedge, "failed");
    AppendFailoverSpan(job, failed.backend, is_hedge, "call_failed");
    CloseCall(&failed);
    metrics_.failovers->Increment();
    if (!job.rerouted) {
      job.rerouted = true;
      metrics_.rerouted_queries->Increment();
    }
    RouteCall& other = is_hedge ? job.primary : job.hedge;
    if (other.active()) return;  // the surviving call may still answer
    if (Dispatch(job, &job.primary, now)) return;
    const uint64_t id = job.route_id;
    FinishUnroutable(job);
    jobs_.erase(id);
  }

  /// Every candidate is down or refusing: degrade instead of hanging. A
  /// cell query gets the paper's Table 9 "-" semantics — a structured
  /// error-entry answer the report layer already knows how to render; any
  /// other op gets a retryable kUnavailable.
  void FinishUnroutable(RouteJob& job) {
    QueryResponse response;
    response.id = job.request.id;
    if (job.request.op == "cell") {
      GridCellCheckpoint cell;
      cell.matcher = job.request.matcher;
      cell.marker = MatcherMarker(job.request.matcher);
      cell.error = true;
      cell.status =
          Status::Unavailable("no backend available for cell '" + job.key +
                              "'")
              .ToString();
      response.payload = GridCellToJson(cell);
      metrics_.degraded_answers->Increment();
    } else {
      response.status =
          Status::Unavailable("no backend available for op '" +
                              job.request.op + "'");
      response.retry_after_s = CurrentRetryAfterS();
      metrics_.unroutable_queries->Increment();
    }
    FinishRoutedJob(job, response, MonotonicSeconds(), "unroutable");
  }

  void ExpireJobs(double now) {
    std::vector<uint64_t> expired;
    for (auto& [id, job] : jobs_) {
      if (now >= job.deadline_s) expired.push_back(id);
    }
    for (uint64_t id : expired) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      RouteJob& job = it->second;
      metrics_.deadline_expired->Increment();
      if (job.hedge.active()) metrics_.hedges_lost->Increment();
      FinishCallSpan(job, job.primary, /*is_hedge=*/false, "expired");
      FinishCallSpan(job, job.hedge, /*is_hedge=*/true, "expired");
      CloseCall(&job.primary);
      CloseCall(&job.hedge);
      QueryResponse response;
      response.id = job.request.id;
      response.status =
          Status::DeadlineExceeded("deadline expired in router");
      FinishRoutedJob(job, response, now, "deadline");
      jobs_.erase(it);
    }
  }

  // ------------------------------------------------------------ outbound --

  void Respond(uint64_t conn_id, const QueryResponse& response) {
    if (response.status.ok()) {
      metrics_.queries_ok->Increment();
    } else if (!response.status.IsUnavailable()) {
      // Sheds are retryable and expected under load; only a definite
      // error counts as a failed query.
      metrics_.failed_queries->Increment();
    }
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      metrics_.responses_dropped->Increment();
      return;
    }
    it->second.outbuf.append(EncodeServeMessage(
        kFrameQueryResponse, SerializeQueryResponse(response)));
    FlushConn(it->second);
  }

  void FlushConn(FrontConnection& conn) {
    const uint64_t conn_id = conn.id;
    while (conn.has_pending_out()) {
      ssize_t n = ::write(conn.fd, conn.outbuf.data() + conn.out_sent,
                          conn.outbuf.size() - conn.out_sent);
      if (n > 0) {
        conn.out_sent += static_cast<size_t>(n);
        conn.last_activity_s = MonotonicSeconds();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      metrics_.client_disconnects->Increment();
      CloseConn(conn_id);
      return;
    }
    if (!conn.has_pending_out()) {
      conn.outbuf.clear();
      conn.out_sent = 0;
    }
  }

  void CloseSlowClients(double now) {
    std::vector<uint64_t> slow;
    for (auto& [id, conn] : conns_) {
      const bool mid_frame = conn.decoder.buffered() > 0;
      const bool undelivered = conn.has_pending_out();
      if (!mid_frame && !undelivered) continue;
      if (now - conn.last_activity_s > options_.io_timeout_s) {
        slow.push_back(id);
      }
    }
    for (uint64_t id : slow) {
      metrics_.slow_client_closes->Increment();
      FAIREM_LOG(WARN) << "closing slow client" << LogKv("conn", id);
      CloseConn(id);
    }
  }

  // --------------------------------------------------------------- drain --

  void BeginDrain() {
    draining_ = true;
    FAIREM_LOG(WARN) << "drain requested"
                     << LogKv("signal", ShutdownGuard::signal_number())
                     << LogKv("inflight", jobs_.size())
                     << LogKv("connections", conns_.size());
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    ::unlink(options_.socket_path.c_str());
    // In-flight routed queries finish, fail over, or deadline out — the
    // loop keeps pumping them; only new arrivals are shed.
  }

  bool DrainComplete() const {
    if (!jobs_.empty()) return false;
    for (const auto& [id, conn] : conns_) {
      if (conn.has_pending_out()) return false;
    }
    return true;
  }

  void FinishDrain() {
    for (auto& [id, conn] : conns_) ::close(conn.fd);
    conns_.clear();
    for (auto& [path, backend] : backends_) {
      if (backend.fd >= 0) ::close(backend.fd);
      backend.fd = -1;
    }
    UpdateGauges(MonotonicSeconds());
    metrics_.shutdowns->Increment();
    if (!options_.metrics_path.empty()) {
      Status st = WriteFileDurable(
          options_.metrics_path,
          MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot()));
      if (!st.ok()) {
        FAIREM_LOG(WARN) << "drain metrics flush failed"
                         << LogKv("status", st.ToString());
      }
    }
    FAIREM_LOG(INFO) << "drain complete"
                     << LogKv("queries", metrics_.queries_total->value());
  }

  void UpdateGauges(double now) {
    metrics_.backends->Set(static_cast<double>(backends_.size()));
    metrics_.backends_usable->Set(
        static_cast<double>(UsableBackendCount(now)));
    metrics_.inflight_jobs->Set(static_cast<double>(jobs_.size()));
    metrics_.connections->Set(static_cast<double>(conns_.size()));
    for (auto& [path, backend] : backends_) {
      backend.state_gauge->Set(
          static_cast<double>(backend.breaker.state(now)));
    }
  }

  RouteOptions options_;
  RouteMetrics metrics_;
  SlowQueryLogger slowlog_;
  Rng rng_;
  int listen_fd_ = -1;
  uint64_t next_conn_id_ = 0;
  uint64_t route_sequence_ = 0;
  uint64_t probe_sequence_ = 0;
  bool draining_ = false;
  std::map<uint64_t, FrontConnection> conns_;
  std::map<std::string, Backend> backends_;
  std::map<uint64_t, RouteJob> jobs_;
};

}  // namespace

uint64_t RendezvousRank(const std::string& cell_key,
                        const std::string& backend) {
  // FNV-1a over key, a separator byte, then backend (the separator keeps
  // ("ab","c") and ("a","bc") distinct), finished with the splitmix64
  // avalanche so rendezvous comparisons see well-mixed high bits.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : cell_key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= 0x1full;
  h *= 1099511628211ull;
  for (unsigned char c : backend) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::vector<std::string> ParseBackendsList(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view trimmed = TrimAscii(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::string path(trimmed);
    if (std::find(out.begin(), out.end(), path) == out.end()) {
      out.push_back(std::move(path));
    }
  }
  return out;
}

Status RunRouteDaemon(const RouteOptions& options) {
  IgnoreSigpipe();
  ShutdownGuard shutdown_guard;
  InstallSighupHandler();
  RouteOptions normalized = options;
  if (normalized.max_inflight_jobs < 1) normalized.max_inflight_jobs = 1;
  if (normalized.health_period_s <= 0.0) normalized.health_period_s = 0.5;
  if (normalized.health_timeout_s <= 0.0) normalized.health_timeout_s = 2.0;
  if (normalized.poll_interval_s <= 0.0) normalized.poll_interval_s = 0.01;
  if (normalized.hedge_quantile <= 0.0 || normalized.hedge_quantile > 1.0) {
    normalized.hedge_quantile = 0.95;
  }
  if (normalized.hedge_delay_factor <= 0.0) {
    normalized.hedge_delay_factor = 1.0;
  }
  RouteDaemon daemon(normalized);
  return daemon.Run();
}

}  // namespace fairem
