#ifndef FAIREM_ROUTE_ROUTER_H_
#define FAIREM_ROUTE_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace fairem {

// The shard router (`fairem route`, DESIGN.md §15): a front-end daemon that
// fans queries out across N `fairem serve` backends and wraps each one in a
// robustness envelope, so a fleet of daemons presents as one reliable
// endpoint. It speaks the same framed protocol as the daemons on both
// sides — ServeClient talks to a router or a daemon unchanged.
//
//   * Rendezvous routing: each query's cell key ranks every backend by
//     RendezvousRank and the highest usable one wins, so cache warmth
//     survives membership changes — adding or removing a backend only
//     moves the keys that hashed to it, never reshuffles the rest.
//   * Health checks: every backend gets an active HLTH probe on a jittered
//     period over a persistent connection; a probe timeout or transport
//     error counts against the backend like a failed query.
//   * Circuit breakers: consecutive failures (probes or queries) open a
//     per-backend breaker; while open the backend is skipped at routing
//     time. Probes keep flowing regardless, so a recovered backend closes
//     its breaker and rejoins without a router restart.
//   * Failover: a query whose backend dies mid-flight, refuses
//     (kUnavailable shed/drain), or cannot be reached is re-dispatched to
//     the next-ranked backend it has not tried yet, within its deadline.
//   * Hedging: when enabled, a query still unanswered after a delay
//     derived from the observed backend-call p95 gets a second request on
//     a different backend; the first answer wins and the loser is
//     cancelled. Tames tail latency from a slow-but-alive backend.
//   * Graceful degradation: when every backend for a cell is exhausted, a
//     cell query returns the structured error-entry answer (the paper's
//     Table 9 "-" semantics) instead of hanging or dropping.
//   * Live membership: SIGHUP re-reads `backends_file` and applies
//     adds/removes in place; surviving backends keep their breaker and
//     probe state.
//
// Same architecture as the daemon (DESIGN.md §14): one poll() loop, no
// threads, bounded admission, end-to-end deadlines, cooperative
// SIGTERM/SIGINT drain, durable final metrics. Metrics land under
// fairem.route.*.

struct RouteOptions {
  /// Front UNIX-domain socket clients connect to. A stale file from a dead
  /// router is replaced.
  std::string socket_path;
  /// Backend daemon socket paths (static membership).
  std::vector<std::string> backends;
  /// Optional file of backend socket paths, one per line ('#' comments).
  /// Read at startup (union with `backends`) and re-read on SIGHUP.
  std::string backends_file;
  /// Mean period between health probes per backend; each interval is
  /// jittered to [0.5, 1.5) of this so probes never synchronize.
  double health_period_s = 0.5;
  /// A probe unanswered for this long counts as a backend failure.
  double health_timeout_s = 2.0;
  /// Consecutive failures that open a backend's breaker.
  int breaker_failure_threshold = 3;
  /// Seconds a breaker stays open before allowing trial traffic.
  double breaker_cooldown_s = 1.0;
  /// Hedged second requests (off leaves only failover re-dispatch).
  bool hedge = true;
  /// Floor for the hedge delay; also used before enough calls have been
  /// observed to estimate a p95.
  double hedge_min_delay_s = 0.05;
  /// Backend-call latency quantile the hedge delay tracks.
  double hedge_quantile = 0.95;
  /// Multiplier on the quantile estimate.
  double hedge_delay_factor = 1.0;
  /// Routed queries in flight at once; past this, arrivals are shed with a
  /// retryable kUnavailable and a load-aware retry_after_s hint.
  int max_inflight_jobs = 64;
  double default_deadline_s = 30.0;
  double max_deadline_s = 120.0;
  /// Per-connection IO activity deadline (slow-client protection).
  double io_timeout_s = 10.0;
  /// Base backoff hint shipped with kUnavailable sheds.
  double retry_after_s = 0.05;
  double poll_interval_s = 0.01;
  /// When non-empty, the final metrics snapshot is written here durably as
  /// the last step of the drain.
  std::string metrics_path;
  int listen_backlog = 64;
  /// Slow-query log (DESIGN.md §16): routed queries slower than
  /// slow_query_ms end-to-end get one wide-event JSON line (trace id, op,
  /// key, status, span breakdown) appended to slow_query_log, rate-limited.
  /// Disabled when slow_query_ms <= 0 or the path is empty.
  double slow_query_ms = 0.0;
  std::string slow_query_log;
};

/// Runs the router until a SIGTERM/SIGINT drain completes. Returns OK after
/// a clean drain; an error Status when the front socket cannot be set up or
/// no backend is configured. Installs its own ShutdownGuard and SIGHUP
/// handler and ignores SIGPIPE.
Status RunRouteDaemon(const RouteOptions& options);

/// Rendezvous (highest-random-weight) rank of `backend` for `cell_key`:
/// a stable 64-bit hash of the pair. Routing sends a key to the usable
/// backend with the highest rank, so membership changes only remap keys
/// whose winner changed. Deterministic across processes and runs (no
/// std::hash, whose value is unspecified across implementations).
uint64_t RendezvousRank(const std::string& cell_key,
                        const std::string& backend);

/// Parses a backends file: one socket path per line, blank lines and
/// '#'-comments skipped, surrounding whitespace trimmed, duplicates
/// dropped (first occurrence wins).
std::vector<std::string> ParseBackendsList(const std::string& text);

}  // namespace fairem

#endif  // FAIREM_ROUTE_ROUTER_H_
