#ifndef FAIREM_CORE_AUDIT_H_
#define FAIREM_CORE_AUDIT_H_

#include <string>
#include <vector>

#include "src/core/confusion.h"
#include "src/core/disparity.h"
#include "src/core/hierarchy.h"
#include "src/core/measures.h"
#include "src/util/result.h"

namespace fairem {

/// What a group's statistic is compared against when computing disparity.
enum class AuditReference {
  /// The matcher's overall statistic (Eq. 1/3 literally). With few groups
  /// a dominant group drags the overall value toward its own, compressing
  /// its disparity.
  kOverall,
  /// The statistic over all pairs *outside* the group ("everyone else") —
  /// the between-group convention behind the paper's Tables 5/6 and its
  /// social-dataset unfairness flags.
  kComplement,
};

/// Configuration of a fairness audit.
struct AuditOptions {
  /// Measures to evaluate; empty = all 11 of Table 2.
  std::vector<FairnessMeasure> measures;

  AuditReference reference = AuditReference::kOverall;

  /// Disparity above this flags the group as discriminated. 0.2 follows the
  /// EEOC 80% rule the paper adopts (§5.1.4).
  double fairness_threshold = 0.2;

  /// The raw statistics must additionally differ by this much for a group
  /// to be flagged — division disparities of near-zero rates (FDR 0.02 vs
  /// 0.01) explode without representing a meaningful harm.
  double min_absolute_gap = 0.02;

  DisparityMode mode = DisparityMode::kSubtraction;

  /// Groups with fewer legitimate pairs than this are skipped (too little
  /// evidence to call a matcher unfair).
  int64_t min_group_pairs = 10;
};

/// One audited (group, measure) cell.
struct AuditEntry {
  std::string group_label;   // "cn", or "cn | de" for pairwise audits
  FairnessMeasure measure = FairnessMeasure::kAccuracyParity;
  bool defined = false;      // statistic had a non-empty denominator
  double overall_value = 0.0;
  double group_value = 0.0;
  double disparity = 0.0;    // clamped at 0
  double signed_disparity = 0.0;
  bool unfair = false;
  int64_t group_pairs = 0;   // # legitimate pairs for the group
};

/// Result of an audit: the grid of (group, measure) cells plus helpers that
/// mirror Algorithm 1's outputs.
struct AuditReport {
  std::vector<AuditEntry> entries;

  /// Group labels discriminated w.r.t. `m` (Algorithm 1's g_single /
  /// g_pairwise lists, for the chosen audit kind).
  std::vector<std::string> DiscriminatedGroups(FairnessMeasure m) const;

  /// All discriminated (group, measure) cells.
  std::vector<const AuditEntry*> UnfairEntries() const;

  /// The entry for (group, measure), or nullptr.
  const AuditEntry* Find(const std::string& group_label,
                         FairnessMeasure m) const;

  /// Number of distinct groups with at least one unfair measure.
  int NumDiscriminatedGroups() const;
};

/// Evaluates every configured measure for one audited unit (group or
/// subgroup) against `reference` counts, appending one entry per measure
/// (EqualizedOdds expands into its TPRP/FPRP components). Shared by
/// FairnessAuditor and MultiAttrAuditor.
void AppendMeasureEntries(const std::string& label,
                          const ConfusionCounts& reference,
                          const ConfusionCounts& group_counts,
                          const AuditOptions& options,
                          std::vector<AuditEntry>* entries);

/// Audits one matcher's outcomes on one sensitive attribute. Use
/// MakeOutcomes (core/confusion.h) to build outcomes from scores and a
/// matching threshold.
class FairnessAuditor {
 public:
  /// `attr` is the sensitive attribute; tables are the matching task's A/B.
  static Result<FairnessAuditor> Make(const Table& a, const Table& b,
                                      SensitiveAttr attr);

  const GroupMembership& membership() const { return membership_; }
  const std::vector<std::string>& groups() const {
    return membership_.groups();
  }

  /// Single fairness (§3.2.2): each level-1 group audited against pairs
  /// with either record in the group.
  Result<AuditReport> AuditSingle(const std::vector<PairOutcome>& outcomes,
                                  const AuditOptions& options) const;

  /// Pairwise fairness: every unordered pair of level-1 groups (including
  /// g|g) audited against pairs whose records lie in the two groups.
  Result<AuditReport> AuditPairwise(const std::vector<PairOutcome>& outcomes,
                                    const AuditOptions& options) const;

  /// Batch audit of explicit intersectional subgroups (a level of the Fig. 1
  /// hierarchy) under single fairness semantics.
  Result<AuditReport> AuditSubgroups(const std::vector<Subgroup>& subgroups,
                                     const std::vector<PairOutcome>& outcomes,
                                     const AuditOptions& options) const;

  /// Ordered single fairness (§3.2.2's extension): groups are defined only
  /// on the record on `side` of each pair. Useful when the two tables play
  /// asymmetric roles (passengers vs the no-fly list).
  Result<AuditReport> AuditSingleOrdered(
      const std::vector<PairOutcome>& outcomes, PairSide side,
      const AuditOptions& options) const;

  /// Ordered pairwise fairness: every *ordered* pair of level-1 groups
  /// (left group, right group) — no direction swap, so "cn -> de" and
  /// "de -> cn" are audited separately.
  Result<AuditReport> AuditPairwiseOrdered(
      const std::vector<PairOutcome>& outcomes,
      const AuditOptions& options) const;

 private:
  /// Shared (group-counts → entries) evaluation for one audited unit.
  Status AppendEntries(const std::string& label,
                       const ConfusionCounts& overall,
                       const ConfusionCounts& group_counts,
                       const AuditOptions& options,
                       std::vector<AuditEntry>* entries) const;

  GroupMembership membership_;
  SensitiveAttr attr_;
};

}  // namespace fairem

#endif  // FAIREM_CORE_AUDIT_H_
