#include "src/core/hierarchy.h"

#include <algorithm>

namespace fairem {
namespace {

struct TaggedGroup {
  std::string name;
  size_t attr_index;
  bool exclusive;
};

void Enumerate(const std::vector<TaggedGroup>& all, size_t start, int remaining,
               std::vector<size_t>* current,
               std::vector<Subgroup>* out) {
  if (remaining == 0) {
    Subgroup sg;
    for (size_t idx : *current) sg.groups.push_back(all[idx].name);
    std::sort(sg.groups.begin(), sg.groups.end());
    out->push_back(std::move(sg));
    return;
  }
  for (size_t i = start; i < all.size(); ++i) {
    // At most one group per exclusive attribute.
    bool conflict = false;
    if (all[i].exclusive) {
      for (size_t idx : *current) {
        if (all[idx].attr_index == all[i].attr_index) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) continue;
    current->push_back(i);
    Enumerate(all, i + 1, remaining - 1, current, out);
    current->pop_back();
  }
}

std::vector<TaggedGroup> Flatten(const std::vector<AttrDomain>& attrs) {
  std::vector<TaggedGroup> all;
  for (size_t a = 0; a < attrs.size(); ++a) {
    bool exclusive = attrs[a].attr.kind != SensitiveAttrKind::kSetwise;
    for (const auto& g : attrs[a].domain) {
      all.push_back({g, a, exclusive});
    }
  }
  return all;
}

}  // namespace

std::string Subgroup::Label() const {
  std::string label;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) label += " & ";
    label += groups[i];
  }
  return label;
}

int MaxLevel(const std::vector<AttrDomain>& attrs) {
  int level = 0;
  for (const auto& ad : attrs) {
    if (ad.attr.kind == SensitiveAttrKind::kSetwise) {
      level += static_cast<int>(ad.domain.size());
    } else {
      level += 1;
    }
  }
  return level;
}

Result<std::vector<Subgroup>> EnumerateLevel(
    const std::vector<AttrDomain>& attrs, int k) {
  if (k < 1) return Status::InvalidArgument("hierarchy level must be >= 1");
  std::vector<TaggedGroup> all = Flatten(attrs);
  std::vector<Subgroup> out;
  std::vector<size_t> current;
  Enumerate(all, 0, k, &current, &out);
  return out;
}

}  // namespace fairem
