#include "src/core/measures.h"

namespace fairem {

const char* FairnessMeasureName(FairnessMeasure m) {
  switch (m) {
    case FairnessMeasure::kAccuracyParity:
      return "AP";
    case FairnessMeasure::kStatisticalParity:
      return "SP";
    case FairnessMeasure::kTruePositiveRateParity:
      return "TPRP";
    case FairnessMeasure::kFalsePositiveRateParity:
      return "FPRP";
    case FairnessMeasure::kFalseNegativeRateParity:
      return "FNRP";
    case FairnessMeasure::kTrueNegativeRateParity:
      return "TNRP";
    case FairnessMeasure::kEqualizedOdds:
      return "EO";
    case FairnessMeasure::kPositivePredictiveValueParity:
      return "PPVP";
    case FairnessMeasure::kNegativePredictiveValueParity:
      return "NPVP";
    case FairnessMeasure::kFalseDiscoveryRateParity:
      return "FDRP";
    case FairnessMeasure::kFalseOmissionRateParity:
      return "FORP";
  }
  return "?";
}

const char* FairnessMeasureDescription(FairnessMeasure m) {
  switch (m) {
    case FairnessMeasure::kAccuracyParity:
      return "requires the independence of the matcher's accuracy from "
             "groups";
    case FairnessMeasure::kStatisticalParity:
      return "requires the independence of the matcher from groups";
    case FairnessMeasure::kTruePositiveRateParity:
      return "a.k.a. Equal Opportunity; in the group of true matches "
             "requires the independence of match predictions from groups";
    case FairnessMeasure::kFalsePositiveRateParity:
      return "in the group of true non-matches, requires the independence "
             "of match predictions from groups";
    case FairnessMeasure::kFalseNegativeRateParity:
      return "in the group of true matches, requires the independence of "
             "non-match predictions from groups";
    case FairnessMeasure::kTrueNegativeRateParity:
      return "in the group of true non-matches, requires the independence "
             "of non-match predictions from groups";
    case FairnessMeasure::kEqualizedOdds:
      return "in both groups of true matches and true non-matches requires "
             "the independence of match predictions from groups";
    case FairnessMeasure::kPositivePredictiveValueParity:
      return "among the pairs predicted as match, requires the independence "
             "of true matches from groups";
    case FairnessMeasure::kNegativePredictiveValueParity:
      return "among the pairs predicted as non-match, requires the "
             "independence of true non-matches from groups";
    case FairnessMeasure::kFalseDiscoveryRateParity:
      return "among the pairs predicted as match, requires the independence "
             "of true non-matches from groups";
    case FairnessMeasure::kFalseOmissionRateParity:
      return "among the pairs predicted as non-match, requires the "
             "independence of true matches from groups";
  }
  return "?";
}

Result<FairnessMeasure> ParseFairnessMeasure(std::string_view name) {
  for (FairnessMeasure m : kAllFairnessMeasures) {
    if (name == FairnessMeasureName(m)) return m;
  }
  return Status::NotFound("unknown fairness measure: " + std::string(name));
}

MeasureCategory CategoryOf(FairnessMeasure m) {
  switch (m) {
    case FairnessMeasure::kStatisticalParity:
      return MeasureCategory::kIndependence;
    case FairnessMeasure::kAccuracyParity:
    case FairnessMeasure::kTruePositiveRateParity:
    case FairnessMeasure::kFalsePositiveRateParity:
    case FairnessMeasure::kFalseNegativeRateParity:
    case FairnessMeasure::kTrueNegativeRateParity:
    case FairnessMeasure::kEqualizedOdds:
      return MeasureCategory::kSeparation;
    case FairnessMeasure::kPositivePredictiveValueParity:
    case FairnessMeasure::kNegativePredictiveValueParity:
    case FairnessMeasure::kFalseDiscoveryRateParity:
    case FairnessMeasure::kFalseOmissionRateParity:
      return MeasureCategory::kSufficiency;
  }
  return MeasureCategory::kSeparation;
}

bool LowerIsBetter(FairnessMeasure m) {
  switch (m) {
    case FairnessMeasure::kFalsePositiveRateParity:
    case FairnessMeasure::kFalseNegativeRateParity:
    case FairnessMeasure::kFalseDiscoveryRateParity:
    case FairnessMeasure::kFalseOmissionRateParity:
      return true;
    default:
      return false;
  }
}

bool RequiresTrueMatches(FairnessMeasure m) {
  switch (m) {
    case FairnessMeasure::kTruePositiveRateParity:
    case FairnessMeasure::kFalseNegativeRateParity:
    case FairnessMeasure::kEqualizedOdds:
    case FairnessMeasure::kPositivePredictiveValueParity:
    case FairnessMeasure::kNegativePredictiveValueParity:
    case FairnessMeasure::kFalseDiscoveryRateParity:
    case FairnessMeasure::kFalseOmissionRateParity:
      return true;
    default:
      return false;
  }
}

Result<double> MeasureStatistic(FairnessMeasure m, const ConfusionCounts& c) {
  switch (m) {
    case FairnessMeasure::kAccuracyParity:
      return Accuracy(c);
    case FairnessMeasure::kStatisticalParity:
      return PositivePredictionRate(c);
    case FairnessMeasure::kTruePositiveRateParity:
      return TruePositiveRate(c);
    case FairnessMeasure::kFalsePositiveRateParity:
      return FalsePositiveRate(c);
    case FairnessMeasure::kFalseNegativeRateParity:
      return FalseNegativeRate(c);
    case FairnessMeasure::kTrueNegativeRateParity:
      return TrueNegativeRate(c);
    case FairnessMeasure::kEqualizedOdds:
      return Status::InvalidArgument(
          "equalized odds is the conjunction of TPRP and FPRP; evaluate "
          "those components instead");
    case FairnessMeasure::kPositivePredictiveValueParity:
      return PositivePredictiveValue(c);
    case FairnessMeasure::kNegativePredictiveValueParity:
      return NegativePredictiveValue(c);
    case FairnessMeasure::kFalseDiscoveryRateParity:
      return FalseDiscoveryRate(c);
    case FairnessMeasure::kFalseOmissionRateParity:
      return FalseOmissionRate(c);
  }
  return Status::InvalidArgument("unknown fairness measure");
}

std::vector<FairnessMeasure> ScalarFairnessMeasures() {
  std::vector<FairnessMeasure> out;
  for (FairnessMeasure m : kAllFairnessMeasures) {
    if (m != FairnessMeasure::kEqualizedOdds) out.push_back(m);
  }
  return out;
}

}  // namespace fairem
