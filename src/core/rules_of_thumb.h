#ifndef FAIREM_CORE_RULES_OF_THUMB_H_
#define FAIREM_CORE_RULES_OF_THUMB_H_

#include <string>
#include <vector>

#include "src/core/measures.h"
#include "src/data/dataset.h"
#include "src/matcher/matcher.h"
#include "src/util/result.h"

namespace fairem {

/// A profile of a matching task, derived from the data, that drives the
/// paper's Table 8 recommendations.
struct DatasetProfile {
  /// Dominant attribute regime.
  enum class Kind { kStructured, kTextualOrDirty } kind =
      Kind::kStructured;
  /// Fraction of labelled pairs that are matches.
  double positive_rate = 0.0;
  /// Fraction of cells that are null across both tables.
  double null_rate = 0.0;
  /// Number of matching attributes.
  int num_attrs = 0;
};

/// Profiles a dataset: textual (single long-text attribute) or dirty
/// (null-heavy) tasks fall into kTextualOrDirty; everything else is
/// structured.
Result<DatasetProfile> ProfileDataset(const EMDataset& dataset);

/// The Table 8 recommendation for a profiled task.
struct Recommendation {
  /// Preferred matcher family (Table 8's first line per regime).
  MatcherFamily family = MatcherFamily::kNonNeural;
  /// The fairness measures most capable of revealing unfairness for this
  /// class balance (§3.5 / §5.3.2: TPRP+PPVP normally; NPVP+FPRP under
  /// negative imbalance).
  std::vector<FairnessMeasure> measures;
  /// Human-readable Table 8 bullet points for this regime.
  std::vector<std::string> advice;
};

/// Applies the paper's rules of thumb (Table 8) to a profile.
Recommendation RecommendFor(const DatasetProfile& profile);

/// Convenience: profile + recommend in one step.
Result<Recommendation> RecommendFor(const EMDataset& dataset);

}  // namespace fairem

#endif  // FAIREM_CORE_RULES_OF_THUMB_H_
