#ifndef FAIREM_CORE_MEASURES_H_
#define FAIREM_CORE_MEASURES_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/ml/metrics.h"
#include "src/util/result.h"

namespace fairem {

/// The 11 group-fairness measures of Table 2, adapted to entity matching.
enum class FairnessMeasure {
  kAccuracyParity,       // AP
  kStatisticalParity,    // SP
  kTruePositiveRateParity,   // TPRP (equal opportunity)
  kFalsePositiveRateParity,  // FPRP
  kFalseNegativeRateParity,  // FNRP
  kTrueNegativeRateParity,   // TNRP
  kEqualizedOdds,            // EO = TPRP ∧ FPRP
  kPositivePredictiveValueParity,  // PPVP
  kNegativePredictiveValueParity,  // NPVP
  kFalseDiscoveryRateParity,       // FDRP
  kFalseOmissionRateParity,        // FORP
};

/// Short display name ("TPRP", "PPVP", ...).
const char* FairnessMeasureName(FairnessMeasure m);

/// The Table 2 description, e.g. for TPRP: "in the group of true matches
/// requires the independence of match predictions from groups".
const char* FairnessMeasureDescription(FairnessMeasure m);

/// Parses a short display name.
Result<FairnessMeasure> ParseFairnessMeasure(std::string_view name);

/// The four categories of §3.4.
enum class MeasureCategory { kIndependence, kSeparation, kSufficiency };
MeasureCategory CategoryOf(FairnessMeasure m);

/// True for measures whose statistic is better when *lower* (FPRP, FNRP,
/// FDRP, FORP). Drives the disparity direction handling of §3.6.
bool LowerIsBetter(FairnessMeasure m);

/// True for the measures footnoted in Table 2: they depend on true matches
/// (TP/FN) and are only meaningful for single fairness, or pairwise
/// fairness with overlapping groups (§3.5). In practice the statistics are
/// simply undefined (empty denominator) in the inapplicable cases.
bool RequiresTrueMatches(FairnessMeasure m);

/// The underlying conditional probability Pr(α | β [, g]) of a measure,
/// evaluated on a confusion matrix. EqualizedOdds has no single statistic
/// (it is the conjunction of TPRP and FPRP) and returns InvalidArgument —
/// audit code expands EO into its two components.
Result<double> MeasureStatistic(FairnessMeasure m, const ConfusionCounts& c);

/// All 11 measures in Table 2 order.
inline constexpr FairnessMeasure kAllFairnessMeasures[] = {
    FairnessMeasure::kAccuracyParity,
    FairnessMeasure::kStatisticalParity,
    FairnessMeasure::kTruePositiveRateParity,
    FairnessMeasure::kFalsePositiveRateParity,
    FairnessMeasure::kFalseNegativeRateParity,
    FairnessMeasure::kTrueNegativeRateParity,
    FairnessMeasure::kEqualizedOdds,
    FairnessMeasure::kPositivePredictiveValueParity,
    FairnessMeasure::kNegativePredictiveValueParity,
    FairnessMeasure::kFalseDiscoveryRateParity,
    FairnessMeasure::kFalseOmissionRateParity,
};

/// The measures with their own statistic (all but EO).
std::vector<FairnessMeasure> ScalarFairnessMeasures();

}  // namespace fairem

#endif  // FAIREM_CORE_MEASURES_H_
