#include "src/core/group.h"

#include <algorithm>
#include <set>

#include "src/util/string_util.h"

namespace fairem {

std::vector<std::string> ParseGroups(std::string_view cell,
                                     const SensitiveAttr& attr) {
  std::vector<std::string> groups;
  std::string_view trimmed = TrimAscii(cell);
  if (trimmed.empty()) return groups;
  if (attr.kind == SensitiveAttrKind::kSetwise) {
    for (const auto& part : Split(trimmed, attr.setwise_separator)) {
      std::string_view p = TrimAscii(part);
      if (!p.empty()) groups.emplace_back(p);
    }
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  } else {
    groups.emplace_back(trimmed);
  }
  return groups;
}

Result<GroupExtractor> GroupExtractor::Make(const Table& table,
                                            const SensitiveAttr& attr) {
  FAIREM_ASSIGN_OR_RETURN(size_t col, table.schema().Index(attr.name));
  GroupExtractor extractor;
  extractor.memberships_.resize(table.num_rows());
  std::set<std::string> distinct;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (table.IsNull(r, col)) continue;
    extractor.memberships_[r] = ParseGroups(table.value(r, col), attr);
    for (const auto& g : extractor.memberships_[r]) distinct.insert(g);
  }
  extractor.distinct_.assign(distinct.begin(), distinct.end());
  return extractor;
}

std::vector<std::string> UnionGroups(const GroupExtractor& a,
                                     const GroupExtractor& b) {
  std::set<std::string> all(a.DistinctGroups().begin(),
                            a.DistinctGroups().end());
  all.insert(b.DistinctGroups().begin(), b.DistinctGroups().end());
  return std::vector<std::string>(all.begin(), all.end());
}

}  // namespace fairem
