#ifndef FAIREM_CORE_THRESHOLD_H_
#define FAIREM_CORE_THRESHOLD_H_

#include <vector>

#include "src/core/audit.h"
#include "src/util/result.h"

namespace fairem {

/// One cell of the paper's threshold heat-maps (Figures 14, 21–27): at a
/// matching threshold, the matcher's overall utility (TPR or PPV) and the
/// number of groups it discriminates against w.r.t. the probed measure.
struct ThresholdPoint {
  double threshold = 0.0;
  double utility = 0.0;
  bool utility_defined = false;
  int num_unfair_groups = 0;
};

/// Sweeps matching thresholds for one matcher's scores, auditing single
/// fairness w.r.t. `measure` at each threshold and reporting the utility
/// statistic of the same measure (TPR for TPRP, PPV for PPVP, ...).
Result<std::vector<ThresholdPoint>> SweepThresholds(
    const FairnessAuditor& auditor, const std::vector<LabeledPair>& pairs,
    const std::vector<double>& scores, FairnessMeasure measure,
    const std::vector<double>& thresholds, const AuditOptions& options);

/// Evenly spaced thresholds lo, lo+step, ..., hi (inclusive within 1e-9).
std::vector<double> ThresholdGrid(double lo, double hi, double step);

/// The paper's threshold-sensitivity score (§5.3.4, Table 7): the ℓ2 norm
/// of the successive differences of the unfair-group counts across adjacent
/// thresholds. Larger = less robust to the threshold choice.
double ThresholdSensitivityL2(const std::vector<ThresholdPoint>& sweep);

}  // namespace fairem

#endif  // FAIREM_CORE_THRESHOLD_H_
