#ifndef FAIREM_CORE_HIERARCHY_H_
#define FAIREM_CORE_HIERARCHY_H_

#include <string>
#include <vector>

#include "src/core/group.h"
#include "src/util/result.h"

namespace fairem {

/// One sensitive attribute together with its observed value domain; the
/// input to subgroup-hierarchy enumeration.
struct AttrDomain {
  SensitiveAttr attr;
  std::vector<std::string> domain;
};

/// An intersectional subgroup: a set of level-1 groups, each tagged with the
/// attribute it came from.
struct Subgroup {
  /// Group names, sorted.
  std::vector<std::string> groups;

  /// "Female & Pop & Rock"-style label.
  std::string Label() const;
};

/// Enumerates the level-k intersectional subgroups of the hierarchy in
/// Figure 1 of the paper: all k-combinations of level-1 groups that take at
/// most one group from each exclusive (binary / multi-valued) attribute;
/// setwise attributes may contribute several groups. Level 1 returns every
/// group of every attribute.
///
/// Returns InvalidArgument when k < 1, and an empty list when k exceeds the
/// deepest possible level.
Result<std::vector<Subgroup>> EnumerateLevel(
    const std::vector<AttrDomain>& attrs, int k);

/// The number of levels in the hierarchy: the max subgroup size =
/// (#exclusive attributes) + (total size of all setwise domains).
int MaxLevel(const std::vector<AttrDomain>& attrs);

}  // namespace fairem

#endif  // FAIREM_CORE_HIERARCHY_H_
