#include "src/core/rules_of_thumb.h"

#include "src/feature/feature_gen.h"

namespace fairem {

Result<DatasetProfile> ProfileDataset(const EMDataset& dataset) {
  DatasetProfile profile;
  profile.num_attrs = static_cast<int>(dataset.matching_attrs.size());
  profile.positive_rate = dataset.PositiveRate();

  size_t nulls = 0;
  size_t cells = 0;
  for (const Table* t : {&dataset.table_a, &dataset.table_b}) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (size_t c = 0; c < t->schema().num_attributes(); ++c) {
        ++cells;
        if (t->IsNull(r, c)) ++nulls;
      }
    }
  }
  profile.null_rate =
      cells > 0 ? static_cast<double>(nulls) / static_cast<double>(cells)
                : 0.0;

  bool any_long_text = false;
  for (const auto& attr : dataset.matching_attrs) {
    FAIREM_ASSIGN_OR_RETURN(
        AttrType type,
        InferAttrType(dataset.table_a, dataset.table_b, attr));
    if (type == AttrType::kLongString) any_long_text = true;
  }
  // Table 8's split: textual tasks (few, long-text attributes) and dirty
  // tasks (null-heavy) on one side; clean structured tasks on the other.
  const bool textual = any_long_text && profile.num_attrs <= 2;
  const bool dirty = profile.null_rate > 0.05;
  profile.kind = (textual || dirty)
                     ? DatasetProfile::Kind::kTextualOrDirty
                     : DatasetProfile::Kind::kStructured;
  return profile;
}

Recommendation RecommendFor(const DatasetProfile& profile) {
  Recommendation rec;
  if (profile.kind == DatasetProfile::Kind::kStructured) {
    rec.family = MatcherFamily::kNonNeural;
    rec.advice = {
        "Non-neural matchers are preferred",
        "Obtain attributes with minimal correlation with sensitive "
        "attributes",
        "Minimize representation bias in training data",
        "Make sure the model is not putting high weights on only a few "
        "attributes",
    };
  } else {
    rec.family = MatcherFamily::kNeural;
    rec.advice = {
        "Neural matchers are preferred",
        "Obtain additional (unbiased) features",
        "Use unbiased pretrained models",
        "Minimize representation bias in training data",
        "Considering their sensitivity, try out different matching "
        "thresholds and select the most fair/accurate one",
    };
  }
  // §3.5 / §5.3.2: under the usual non-match imbalance, PPVP and TPRP
  // reveal unfairness; when matches dominate (Cricket), NPVP and FPRP do.
  if (profile.positive_rate > 0.5) {
    rec.measures = {FairnessMeasure::kNegativePredictiveValueParity,
                    FairnessMeasure::kFalsePositiveRateParity};
    rec.advice.push_back(
        "Ground truth is match-heavy: audit NPVP and FPRP first");
  } else {
    rec.measures = {FairnessMeasure::kTruePositiveRateParity,
                    FairnessMeasure::kPositivePredictiveValueParity};
    rec.advice.push_back(
        "Class-imbalanced ground truth: audit TPRP and PPVP first");
  }
  rec.advice.push_back(
      "For a single exclusive sensitive attribute, consider an ensemble "
      "of matchers routed per group (PerGroupEnsembleMatcher)");
  return rec;
}

Result<Recommendation> RecommendFor(const EMDataset& dataset) {
  FAIREM_ASSIGN_OR_RETURN(DatasetProfile profile, ProfileDataset(dataset));
  return RecommendFor(profile);
}

}  // namespace fairem
