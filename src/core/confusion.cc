#include "src/core/confusion.h"

#include <cmath>

namespace fairem {

Result<GroupMembership> GroupMembership::Make(const Table& a, const Table& b,
                                              const SensitiveAttr& attr) {
  FAIREM_ASSIGN_OR_RETURN(GroupExtractor ext_a, GroupExtractor::Make(a, attr));
  FAIREM_ASSIGN_OR_RETURN(GroupExtractor ext_b, GroupExtractor::Make(b, attr));
  GroupMembership membership;
  FAIREM_ASSIGN_OR_RETURN(membership.encoding_,
                          GroupEncoding::Make(UnionGroups(ext_a, ext_b)));
  membership.left_masks_.resize(a.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    FAIREM_ASSIGN_OR_RETURN(membership.left_masks_[r],
                            membership.encoding_.Encode(ext_a.Groups(r)));
  }
  membership.right_masks_.resize(b.num_rows());
  for (size_t r = 0; r < b.num_rows(); ++r) {
    FAIREM_ASSIGN_OR_RETURN(membership.right_masks_[r],
                            membership.encoding_.Encode(ext_b.Groups(r)));
  }
  return membership;
}

Result<GroupMembership> GroupMembership::MakeMulti(
    const Table& a, const Table& b,
    const std::vector<SensitiveAttr>& attrs) {
  if (attrs.empty()) {
    return Status::InvalidArgument("MakeMulti requires at least one attr");
  }
  std::vector<GroupExtractor> ext_a;
  std::vector<GroupExtractor> ext_b;
  std::vector<std::string> all_groups;
  for (const auto& attr : attrs) {
    FAIREM_ASSIGN_OR_RETURN(GroupExtractor ea, GroupExtractor::Make(a, attr));
    FAIREM_ASSIGN_OR_RETURN(GroupExtractor eb, GroupExtractor::Make(b, attr));
    for (const auto& g : UnionGroups(ea, eb)) {
      all_groups.push_back(g);  // duplicates rejected by GroupEncoding
    }
    ext_a.push_back(std::move(ea));
    ext_b.push_back(std::move(eb));
  }
  GroupMembership membership;
  FAIREM_ASSIGN_OR_RETURN(membership.encoding_,
                          GroupEncoding::Make(std::move(all_groups)));
  membership.left_masks_.assign(a.num_rows(), 0);
  membership.right_masks_.assign(b.num_rows(), 0);
  for (size_t k = 0; k < attrs.size(); ++k) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                              membership.encoding_.Encode(ext_a[k].Groups(r)));
      membership.left_masks_[r] |= mask;
    }
    for (size_t r = 0; r < b.num_rows(); ++r) {
      FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                              membership.encoding_.Encode(ext_b[k].Groups(r)));
      membership.right_masks_[r] |= mask;
    }
  }
  return membership;
}

ConfusionCounts OverallCounts(const std::vector<PairOutcome>& outcomes) {
  ConfusionCounts c;
  for (const auto& o : outcomes) c.Add(o.predicted_match, o.true_match);
  return c;
}

ConfusionCounts SingleGroupCounts(const GroupMembership& membership,
                                  const std::vector<PairOutcome>& outcomes,
                                  uint64_t mask) {
  ConfusionCounts c;
  for (const auto& o : outcomes) {
    if (GroupEncoding::Belongs(membership.LeftMask(o.left), mask) ||
        GroupEncoding::Belongs(membership.RightMask(o.right), mask)) {
      c.Add(o.predicted_match, o.true_match);
    }
  }
  return c;
}

ConfusionCounts PairGroupCounts(const GroupMembership& membership,
                                const std::vector<PairOutcome>& outcomes,
                                uint64_t s, uint64_t s_prime) {
  ConfusionCounts c;
  for (const auto& o : outcomes) {
    if (GroupEncoding::PairBelongs(membership.LeftMask(o.left),
                                   membership.RightMask(o.right), s,
                                   s_prime)) {
      c.Add(o.predicted_match, o.true_match);
    }
  }
  return c;
}

ConfusionCounts SingleGroupComplementCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t mask) {
  ConfusionCounts c;
  for (const auto& o : outcomes) {
    if (!GroupEncoding::Belongs(membership.LeftMask(o.left), mask) &&
        !GroupEncoding::Belongs(membership.RightMask(o.right), mask)) {
      c.Add(o.predicted_match, o.true_match);
    }
  }
  return c;
}

ConfusionCounts PairGroupComplementCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t s, uint64_t s_prime) {
  ConfusionCounts c;
  for (const auto& o : outcomes) {
    if (!GroupEncoding::PairBelongs(membership.LeftMask(o.left),
                                    membership.RightMask(o.right), s,
                                    s_prime)) {
      c.Add(o.predicted_match, o.true_match);
    }
  }
  return c;
}

ConfusionCounts OrderedSingleGroupCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t mask, PairSide side) {
  ConfusionCounts c;
  for (const auto& o : outcomes) {
    uint64_t record_mask = side == PairSide::kLeft
                               ? membership.LeftMask(o.left)
                               : membership.RightMask(o.right);
    if (GroupEncoding::Belongs(record_mask, mask)) {
      c.Add(o.predicted_match, o.true_match);
    }
  }
  return c;
}

ConfusionCounts OrderedPairGroupCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t s, uint64_t s_prime) {
  ConfusionCounts c;
  for (const auto& o : outcomes) {
    if (GroupEncoding::Belongs(membership.LeftMask(o.left), s) &&
        GroupEncoding::Belongs(membership.RightMask(o.right), s_prime)) {
      c.Add(o.predicted_match, o.true_match);
    }
  }
  return c;
}

Result<std::vector<PairOutcome>> MakeOutcomes(
    const std::vector<LabeledPair>& pairs, const std::vector<double>& scores,
    double threshold) {
  if (pairs.size() != scores.size()) {
    return Status::InvalidArgument("pairs/scores size mismatch");
  }
  if (!std::isfinite(threshold)) {
    return Status::InvalidArgument("non-finite threshold");
  }
  std::vector<PairOutcome> outcomes;
  outcomes.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::InvalidArgument("non-finite matcher score at index " +
                                     std::to_string(i));
    }
    outcomes.push_back(
        {pairs[i].left, pairs[i].right, scores[i] >= threshold,
         pairs[i].is_match});
  }
  return outcomes;
}

}  // namespace fairem
