#ifndef FAIREM_CORE_GROUP_H_
#define FAIREM_CORE_GROUP_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/table.h"
#include "src/util/result.h"

namespace fairem {

/// Describes one sensitive attribute: its name, kind, and (for setwise
/// attributes) the separator used inside cell values ("Pop|Rock").
struct SensitiveAttr {
  std::string name;
  SensitiveAttrKind kind = SensitiveAttrKind::kBinary;
  char setwise_separator = '|';
};

/// Extracts the level-1 group memberships of records for one sensitive
/// attribute (§3.2.1). For binary / multi-valued attributes a record
/// belongs to exactly one group (its value); for setwise attributes, to
/// every value in its set. Null or empty cells yield no groups.
class GroupExtractor {
 public:
  /// `attr` must exist in the table's schema.
  static Result<GroupExtractor> Make(const Table& table,
                                     const SensitiveAttr& attr);

  /// Groups of row `row` of the table this extractor was built for.
  const std::vector<std::string>& Groups(size_t row) const {
    return memberships_[row];
  }

  /// Sorted distinct groups observed in the table.
  const std::vector<std::string>& DistinctGroups() const { return distinct_; }

 private:
  std::vector<std::vector<std::string>> memberships_;
  std::vector<std::string> distinct_;
};

/// Parses a single cell value into group names according to the attribute
/// kind (exposed for tests and data generators).
std::vector<std::string> ParseGroups(std::string_view cell,
                                     const SensitiveAttr& attr);

/// The sorted union of the distinct groups of two extractors (the space of
/// level-1 groups for a matching task over tables A and B).
std::vector<std::string> UnionGroups(const GroupExtractor& a,
                                     const GroupExtractor& b);

}  // namespace fairem

#endif  // FAIREM_CORE_GROUP_H_
