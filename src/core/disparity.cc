#include "src/core/disparity.h"

#include <algorithm>

namespace fairem {

const char* DisparityModeName(DisparityMode mode) {
  switch (mode) {
    case DisparityMode::kSubtraction:
      return "sub";
    case DisparityMode::kDivision:
      return "div";
  }
  return "?";
}

Result<double> ComputeSignedDisparity(FairnessMeasure m, double overall_value,
                                      double group_value,
                                      DisparityMode mode) {
  const bool lower_better = LowerIsBetter(m);
  if (mode == DisparityMode::kSubtraction) {
    return lower_better ? group_value - overall_value
                        : overall_value - group_value;
  }
  // Division mode: 1 - (good / reference), with the "good" side in the
  // numerator so that a disadvantaged group yields a positive value.
  double numerator = lower_better ? overall_value : group_value;
  double denominator = lower_better ? group_value : overall_value;
  if (denominator == 0.0) {
    if (numerator == 0.0) return 0.0;  // 0/0: both sides are perfect.
    return Status::UndefinedStatistic(
        "division disparity with zero reference value");
  }
  return 1.0 - numerator / denominator;
}

Result<double> BetweenGroupDisparity(FairnessMeasure m, double suspect_value,
                                     double other_value, DisparityMode mode) {
  const bool lower_better = LowerIsBetter(m);
  double sub = lower_better ? suspect_value - other_value
                            : other_value - suspect_value;
  if (mode == DisparityMode::kSubtraction) return sub;
  double denom = lower_better ? other_value : suspect_value;
  if (denom == 0.0) {
    if (sub == 0.0) return 0.0;
    return Status::UndefinedStatistic(
        "between-group division disparity with zero reference");
  }
  return sub / denom;
}

Result<double> ComputeDisparity(FairnessMeasure m, double overall_value,
                                double group_value, DisparityMode mode) {
  FAIREM_ASSIGN_OR_RETURN(
      double signed_disparity,
      ComputeSignedDisparity(m, overall_value, group_value, mode));
  return std::max(0.0, signed_disparity);
}

}  // namespace fairem
