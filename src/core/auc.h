#ifndef FAIREM_CORE_AUC_H_
#define FAIREM_CORE_AUC_H_

#include <string>
#include <vector>

#include "src/core/confusion.h"
#include "src/util/result.h"

namespace fairem {

/// Threshold-free fairness (the AUC-based definition of the parallel work
/// the paper cites as [46], Nilforoushan et al.): instead of auditing the
/// thresholded decisions, compare each group's ROC-AUC of the raw matcher
/// scores. Complements the 11 thresholded measures of Table 2.

/// ROC-AUC of `scores` against binary `labels` (1 = match), computed by
/// the rank statistic with midrank tie handling. UndefinedStatistic when
/// either class is absent.
Result<double> RocAuc(const std::vector<double>& scores,
                      const std::vector<int>& labels);

/// One group's AUC row.
struct GroupAuc {
  std::string group_label;
  bool defined = false;
  double auc = 0.0;
  double overall_auc = 0.0;
  /// max(0, overall - group): the group's scores rank matches worse.
  double disparity = 0.0;
  bool unfair = false;
  int64_t group_pairs = 0;
};

/// Options for the AUC parity audit.
struct AucAuditOptions {
  double fairness_threshold = 0.05;  // AUC gaps are small numbers
  int64_t min_group_pairs = 10;
};

/// Single-fairness AUC parity: per level-1 group, the AUC over pairs with
/// either record in the group vs the overall AUC.
Result<std::vector<GroupAuc>> AuditAucParity(
    const GroupMembership& membership, const std::vector<LabeledPair>& pairs,
    const std::vector<double>& scores, const AucAuditOptions& options = {});

}  // namespace fairem

#endif  // FAIREM_CORE_AUC_H_
