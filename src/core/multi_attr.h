#ifndef FAIREM_CORE_MULTI_ATTR_H_
#define FAIREM_CORE_MULTI_ATTR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/audit.h"
#include "src/core/hierarchy.h"

namespace fairem {

/// Batch auditing over intersectional subgroups of *multiple* sensitive
/// attributes — the full Figure 1 workflow (§3.2.1: "we allow batch
/// auditing subgroups of each level"). Level-1 groups of every attribute
/// share one encoding universe; AuditLevel(k) enumerates the level-k
/// subgroups of the hierarchy and audits each against the whole test set
/// under single-fairness semantics.
class MultiAttrAuditor {
 public:
  /// All attrs must exist in both schemas; group values must be unique
  /// across attributes (qualify your data if, say, gender and genre share a
  /// value).
  static Result<MultiAttrAuditor> Make(const Table& a, const Table& b,
                                       std::vector<SensitiveAttr> attrs);

  /// Observed value domains per attribute (the hierarchy input).
  const std::vector<AttrDomain>& domains() const { return domains_; }

  /// Number of levels in the subgroup hierarchy.
  int max_level() const { return MaxLevel(domains_); }

  /// Audits every level-k intersectional subgroup.
  Result<AuditReport> AuditLevel(int level,
                                 const std::vector<PairOutcome>& outcomes,
                                 const AuditOptions& options) const;

  const GroupMembership& membership() const { return *membership_; }

 private:
  std::vector<AttrDomain> domains_;
  std::unique_ptr<GroupMembership> membership_;
};

}  // namespace fairem

#endif  // FAIREM_CORE_MULTI_ATTR_H_
