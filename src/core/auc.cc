#include "src/core/auc.h"

#include <algorithm>
#include <numeric>

namespace fairem {

Result<double> RocAuc(const std::vector<double>& scores,
                      const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  int64_t n_pos = 0;
  for (int y : labels) n_pos += y;
  int64_t n_neg = static_cast<int64_t>(labels.size()) - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    return Status::UndefinedStatistic("AUC needs both classes");
  }
  // Rank statistic with midranks for ties.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) pos_rank_sum += ranks[k];
  }
  double auc = (pos_rank_sum -
                static_cast<double>(n_pos) * (n_pos + 1) / 2.0) /
               (static_cast<double>(n_pos) * static_cast<double>(n_neg));
  return auc;
}

Result<std::vector<GroupAuc>> AuditAucParity(
    const GroupMembership& membership, const std::vector<LabeledPair>& pairs,
    const std::vector<double>& scores, const AucAuditOptions& options) {
  if (pairs.size() != scores.size()) {
    return Status::InvalidArgument("pairs/scores size mismatch");
  }
  std::vector<int> labels(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    labels[i] = pairs[i].is_match ? 1 : 0;
  }
  Result<double> overall = RocAuc(scores, labels);
  std::vector<GroupAuc> report;
  for (const auto& group : membership.encoding().groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                            membership.encoding().Encode({group}));
    std::vector<double> group_scores;
    std::vector<int> group_labels;
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (GroupEncoding::Belongs(membership.LeftMask(pairs[i].left), mask) ||
          GroupEncoding::Belongs(membership.RightMask(pairs[i].right),
                                 mask)) {
        group_scores.push_back(scores[i]);
        group_labels.push_back(labels[i]);
      }
    }
    GroupAuc row;
    row.group_label = group;
    row.group_pairs = static_cast<int64_t>(group_scores.size());
    Result<double> group_auc = RocAuc(group_scores, group_labels);
    if (overall.ok() && group_auc.ok()) {
      row.defined = true;
      row.auc = *group_auc;
      row.overall_auc = *overall;
      row.disparity = std::max(0.0, *overall - *group_auc);
      row.unfair = row.group_pairs >= options.min_group_pairs &&
                   row.disparity > options.fairness_threshold;
    }
    report.push_back(std::move(row));
  }
  return report;
}

}  // namespace fairem
