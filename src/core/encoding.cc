#include "src/core/encoding.h"

#include <algorithm>

namespace fairem {

Result<GroupEncoding> GroupEncoding::Make(std::vector<std::string> groups) {
  if (groups.size() > 64) {
    return Status::InvalidArgument(
        "GroupEncoding supports at most 64 level-1 groups, got " +
        std::to_string(groups.size()));
  }
  for (size_t i = 0; i < groups.size(); ++i) {
    for (size_t j = i + 1; j < groups.size(); ++j) {
      if (groups[i] == groups[j]) {
        return Status::InvalidArgument("duplicate group name: " + groups[i]);
      }
    }
  }
  GroupEncoding enc;
  enc.groups_ = std::move(groups);
  return enc;
}

Result<int> GroupEncoding::IndexOf(const std::string& group) const {
  auto it = std::find(groups_.begin(), groups_.end(), group);
  if (it == groups_.end()) {
    return Status::NotFound("unknown group: " + group);
  }
  return static_cast<int>(it - groups_.begin());
}

Result<uint64_t> GroupEncoding::Encode(
    const std::vector<std::string>& names) const {
  uint64_t mask = 0;
  for (const auto& name : names) {
    FAIREM_ASSIGN_OR_RETURN(int idx, IndexOf(name));
    mask |= (uint64_t{1} << idx);
  }
  return mask;
}

std::vector<std::string> GroupEncoding::Decode(uint64_t mask) const {
  std::vector<std::string> names;
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (mask & (uint64_t{1} << i)) names.push_back(groups_[i]);
  }
  return names;
}

}  // namespace fairem
