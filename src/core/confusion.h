#ifndef FAIREM_CORE_CONFUSION_H_
#define FAIREM_CORE_CONFUSION_H_

#include <cstdint>
#include <vector>

#include "src/core/encoding.h"
#include "src/core/group.h"
#include "src/data/dataset.h"
#include "src/data/table.h"
#include "src/ml/metrics.h"
#include "src/util/result.h"

namespace fairem {

/// One scored, labelled test pair: the matcher's decision h and the
/// ground truth y for a (left, right) record pair.
struct PairOutcome {
  size_t left = 0;
  size_t right = 0;
  bool predicted_match = false;  // h
  bool true_match = false;       // y
};

/// Binds the group system of a matching task: the level-1 group universe of
/// tables A and B for one sensitive attribute, plus per-row entity
/// encodings (Appendix A).
class GroupMembership {
 public:
  static Result<GroupMembership> Make(const Table& a, const Table& b,
                                      const SensitiveAttr& attr);

  /// Multi-attribute variant: one shared encoding universe over the union
  /// of every attribute's groups (group values must be unique across
  /// attributes). Each record's mask sets the bits of all its groups.
  static Result<GroupMembership> MakeMulti(
      const Table& a, const Table& b,
      const std::vector<SensitiveAttr>& attrs);

  const GroupEncoding& encoding() const { return encoding_; }
  const std::vector<std::string>& groups() const {
    return encoding_.groups();
  }

  uint64_t LeftMask(size_t row) const { return left_masks_[row]; }
  uint64_t RightMask(size_t row) const { return right_masks_[row]; }

 private:
  GroupEncoding encoding_;
  std::vector<uint64_t> left_masks_;
  std::vector<uint64_t> right_masks_;
};

/// Overall confusion matrix over all outcomes.
ConfusionCounts OverallCounts(const std::vector<PairOutcome>& outcomes);

/// Single-fairness confusion matrix of subgroup `mask` (§3.2.2 +
/// Appendix B): an outcome is counted iff either record of the pair belongs
/// to the subgroup. A pair whose two records both belong is counted once —
/// per Example 5, it contributes one result to the subgroup's matrix.
ConfusionCounts SingleGroupCounts(const GroupMembership& membership,
                                  const std::vector<PairOutcome>& outcomes,
                                  uint64_t mask);

/// Pairwise-fairness confusion matrix of the group pair (s, s'): an outcome
/// is counted iff the records belong to s and s' in either order.
ConfusionCounts PairGroupCounts(const GroupMembership& membership,
                                const std::vector<PairOutcome>& outcomes,
                                uint64_t s, uint64_t s_prime);

/// Complement of SingleGroupCounts: outcomes where *neither* record belongs
/// to the subgroup. Used as the disparity reference when auditing against
/// "everyone else" instead of the overall matcher (the convention behind
/// the paper's Tables 5/6 and its social-dataset figures).
ConfusionCounts SingleGroupComplementCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t mask);

/// Complement of PairGroupCounts.
ConfusionCounts PairGroupComplementCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t s, uint64_t s_prime);

/// Which record of a pair defines legitimacy in the *ordered* fairness
/// variants (§3.2.2: "these definitions can be extended to ordered single
/// and ordered pairwise fairness where the groups are defined on left or
/// right records").
enum class PairSide { kLeft, kRight };

/// Ordered single fairness: the outcome counts iff the record on `side`
/// belongs to the subgroup.
ConfusionCounts OrderedSingleGroupCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t mask, PairSide side);

/// Ordered pairwise fairness: the outcome counts iff the left record
/// belongs to `s` AND the right record belongs to `s_prime` (no direction
/// swap).
ConfusionCounts OrderedPairGroupCounts(
    const GroupMembership& membership,
    const std::vector<PairOutcome>& outcomes, uint64_t s, uint64_t s_prime);

/// Converts labelled pairs plus scores into outcomes at `threshold`.
Result<std::vector<PairOutcome>> MakeOutcomes(
    const std::vector<LabeledPair>& pairs, const std::vector<double>& scores,
    double threshold);

}  // namespace fairem

#endif  // FAIREM_CORE_CONFUSION_H_
