#include "src/core/threshold.h"

#include <cmath>
#include <set>

namespace fairem {

std::vector<double> ThresholdGrid(double lo, double hi, double step) {
  std::vector<double> grid;
  for (double t = lo; t <= hi + 1e-9; t += step) grid.push_back(t);
  return grid;
}

Result<std::vector<ThresholdPoint>> SweepThresholds(
    const FairnessAuditor& auditor, const std::vector<LabeledPair>& pairs,
    const std::vector<double>& scores, FairnessMeasure measure,
    const std::vector<double>& thresholds, const AuditOptions& options) {
  AuditOptions sweep_options = options;
  sweep_options.measures = {measure};
  std::vector<ThresholdPoint> sweep;
  sweep.reserve(thresholds.size());
  for (double t : thresholds) {
    FAIREM_ASSIGN_OR_RETURN(std::vector<PairOutcome> outcomes,
                            MakeOutcomes(pairs, scores, t));
    FAIREM_ASSIGN_OR_RETURN(AuditReport report,
                            auditor.AuditSingle(outcomes, sweep_options));
    ThresholdPoint point;
    point.threshold = t;
    Result<double> utility =
        MeasureStatistic(measure, OverallCounts(outcomes));
    if (utility.ok()) {
      point.utility = *utility;
      point.utility_defined = true;
    }
    std::set<std::string> unfair;
    for (const auto& e : report.entries) {
      if (e.unfair) unfair.insert(e.group_label);
    }
    point.num_unfair_groups = static_cast<int>(unfair.size());
    sweep.push_back(point);
  }
  return sweep;
}

double ThresholdSensitivityL2(const std::vector<ThresholdPoint>& sweep) {
  double sum_sq = 0.0;
  for (size_t i = 0; i + 1 < sweep.size(); ++i) {
    double diff = static_cast<double>(sweep[i + 1].num_unfair_groups -
                                      sweep[i].num_unfair_groups);
    sum_sq += diff * diff;
  }
  return std::sqrt(sum_sq);
}

}  // namespace fairem
