#ifndef FAIREM_CORE_DISPARITY_H_
#define FAIREM_CORE_DISPARITY_H_

#include "src/core/measures.h"
#include "src/util/result.h"

namespace fairem {

/// How disparity is computed from the overall and per-group statistics
/// (§3.6): subtraction (Eq. 1 / Eq. 4) or division (Eq. 3).
enum class DisparityMode { kSubtraction, kDivision };

const char* DisparityModeName(DisparityMode mode);

/// Computes the disparity of `group_value` against `overall_value` for
/// measure `m`, handling direction per §3.6:
///   - higher-is-better measures: sub = max(0, overall - group),
///     div = max(0, 1 - group / overall);
///   - lower-is-better measures (FPRP/FNRP/FDRP/FORP): the operands swap.
/// A group doing *better* than the overall matcher is not unfair, hence the
/// max(0, ·). Division by a zero reference returns UndefinedStatistic.
Result<double> ComputeDisparity(FairnessMeasure m, double overall_value,
                                double group_value, DisparityMode mode);

/// Signed disparity without the max(0, ·) clamp (negative values mean the
/// group does better than average).
Result<double> ComputeSignedDisparity(FairnessMeasure m, double overall_value,
                                      double group_value, DisparityMode mode);

/// The between-group convention of the paper's Tables 5 and 6 (verified
/// against all their printed cells): for a higher-is-better statistic,
///   sub = other − suspect,  div = sub / suspect;
/// for a lower-is-better statistic (e.g. FDR),
///   sub = suspect − other,  div = sub / other.
/// Negative values mean the suspect group actually does better. Division
/// by a zero reference returns UndefinedStatistic.
Result<double> BetweenGroupDisparity(FairnessMeasure m, double suspect_value,
                                     double other_value, DisparityMode mode);

}  // namespace fairem

#endif  // FAIREM_CORE_DISPARITY_H_
