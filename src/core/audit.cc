#include "src/core/audit.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// Audit-loop counters (Algorithm 1 observability). Registered eagerly by
/// AuditCounters() so they appear — at zero — in every metrics snapshot
/// that ran an audit, making "no cells were skipped" distinguishable from
/// "skips were never counted".
struct AuditCountersSet {
  Counter* cells_evaluated;
  Counter* cells_flagged;
  Counter* cells_skipped;            // total suppressed by either guard
  Counter* cells_skipped_min_pairs;  // failed AuditOptions::min_group_pairs
  Counter* cells_skipped_min_gap;    // failed AuditOptions::min_absolute_gap
  Counter* cells_undefined;          // empty-denominator statistic
};

const AuditCountersSet& AuditCounters() {
  static const AuditCountersSet counters = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    AuditCountersSet c;
    c.cells_evaluated = reg.GetCounter("fairem.audit.cells_evaluated");
    c.cells_flagged = reg.GetCounter("fairem.audit.cells_flagged");
    c.cells_skipped = reg.GetCounter("fairem.audit.cells_skipped");
    c.cells_skipped_min_pairs =
        reg.GetCounter("fairem.audit.cells_skipped_min_pairs");
    c.cells_skipped_min_gap =
        reg.GetCounter("fairem.audit.cells_skipped_min_gap");
    c.cells_undefined = reg.GetCounter("fairem.audit.cells_undefined");
    return c;
  }();
  return counters;
}

}  // namespace

std::vector<std::string> AuditReport::DiscriminatedGroups(
    FairnessMeasure m) const {
  std::vector<std::string> groups;
  for (const auto& e : entries) {
    if (e.measure == m && e.unfair) groups.push_back(e.group_label);
  }
  return groups;
}

std::vector<const AuditEntry*> AuditReport::UnfairEntries() const {
  std::vector<const AuditEntry*> out;
  for (const auto& e : entries) {
    if (e.unfair) out.push_back(&e);
  }
  return out;
}

const AuditEntry* AuditReport::Find(const std::string& group_label,
                                    FairnessMeasure m) const {
  for (const auto& e : entries) {
    if (e.group_label == group_label && e.measure == m) return &e;
  }
  return nullptr;
}

int AuditReport::NumDiscriminatedGroups() const {
  std::set<std::string> groups;
  for (const auto& e : entries) {
    if (e.unfair) groups.insert(e.group_label);
  }
  return static_cast<int>(groups.size());
}

Result<FairnessAuditor> FairnessAuditor::Make(const Table& a, const Table& b,
                                              SensitiveAttr attr) {
  FairnessAuditor auditor;
  FAIREM_ASSIGN_OR_RETURN(auditor.membership_,
                          GroupMembership::Make(a, b, attr));
  auditor.attr_ = std::move(attr);
  return auditor;
}

namespace {

/// Evaluates one scalar measure for one group; returns a fully populated
/// entry (entry.defined = false when either statistic is undefined).
AuditEntry EvaluateScalar(const std::string& label, FairnessMeasure m,
                          const ConfusionCounts& overall,
                          const ConfusionCounts& group_counts,
                          const AuditOptions& options) {
  const AuditCountersSet& counters = AuditCounters();
  counters.cells_evaluated->Increment();
  AuditEntry entry;
  entry.group_label = label;
  entry.measure = m;
  entry.group_pairs = group_counts.total();
  Result<double> overall_stat = MeasureStatistic(m, overall);
  Result<double> group_stat = MeasureStatistic(m, group_counts);
  if (!overall_stat.ok() || !group_stat.ok()) {
    counters.cells_undefined->Increment();
    return entry;
  }
  Result<double> disp = ComputeDisparity(m, *overall_stat, *group_stat,
                                         options.mode);
  Result<double> signed_disp = ComputeSignedDisparity(
      m, *overall_stat, *group_stat, options.mode);
  if (!disp.ok() || !signed_disp.ok()) {
    counters.cells_undefined->Increment();
    return entry;
  }
  entry.defined = true;
  entry.overall_value = *overall_stat;
  entry.group_value = *group_stat;
  entry.disparity = *disp;
  entry.signed_disparity = *signed_disp;
  const bool enough_pairs = entry.group_pairs >= options.min_group_pairs;
  const bool over_threshold = entry.disparity > options.fairness_threshold;
  const bool enough_gap =
      std::fabs(*group_stat - *overall_stat) > options.min_absolute_gap;
  entry.unfair = enough_pairs && over_threshold && enough_gap;
  if (entry.unfair) {
    counters.cells_flagged->Increment();
  } else if (over_threshold) {
    // Above the disparity threshold but suppressed by an evidence guard —
    // these silent skips are what make paper-table mismatches hard to
    // debug, so they are counted and logged.
    counters.cells_skipped->Increment();
    const char* reason;
    if (!enough_pairs) {
      counters.cells_skipped_min_pairs->Increment();
      reason = "min_group_pairs";
    } else {
      counters.cells_skipped_min_gap->Increment();
      reason = "min_absolute_gap";
    }
    FAIREM_LOG(DEBUG) << "audit cell suppressed" << LogKv("group", label)
                      << LogKv("measure", FairnessMeasureName(m))
                      << LogKv("reason", reason)
                      << LogKv("group_pairs", entry.group_pairs)
                      << LogKv("disparity", FormatDouble(entry.disparity, 4))
                      << LogKv("gap",
                               FormatDouble(
                                   std::fabs(*group_stat - *overall_stat), 4));
  }
  return entry;
}

}  // namespace

void AppendMeasureEntries(const std::string& label,
                          const ConfusionCounts& overall,
                          const ConfusionCounts& group_counts,
                          const AuditOptions& options,
                          std::vector<AuditEntry>* entries) {
  std::vector<FairnessMeasure> measures = options.measures;
  if (measures.empty()) {
    measures.assign(std::begin(kAllFairnessMeasures),
                    std::end(kAllFairnessMeasures));
  }
  for (FairnessMeasure m : measures) {
    if (m == FairnessMeasure::kEqualizedOdds) {
      // EO is the conjunction of TPRP and FPRP (Table 2): the group is
      // EO-unfair iff it is unfair on either component; its disparity is
      // the max of the defined component disparities.
      AuditEntry tprp = EvaluateScalar(
          label, FairnessMeasure::kTruePositiveRateParity, overall,
          group_counts, options);
      AuditEntry fprp = EvaluateScalar(
          label, FairnessMeasure::kFalsePositiveRateParity, overall,
          group_counts, options);
      AuditEntry eo;
      eo.group_label = label;
      eo.measure = m;
      eo.group_pairs = group_counts.total();
      eo.defined = tprp.defined || fprp.defined;
      if (eo.defined) {
        eo.disparity = std::max(tprp.defined ? tprp.disparity : 0.0,
                                fprp.defined ? fprp.disparity : 0.0);
        eo.signed_disparity = eo.disparity;
        eo.unfair = (tprp.defined && tprp.unfair) ||
                    (fprp.defined && fprp.unfair);
      }
      entries->push_back(eo);
      continue;
    }
    entries->push_back(
        EvaluateScalar(label, m, overall, group_counts, options));
  }
}

Status FairnessAuditor::AppendEntries(const std::string& label,
                                      const ConfusionCounts& overall,
                                      const ConfusionCounts& group_counts,
                                      const AuditOptions& options,
                                      std::vector<AuditEntry>* entries) const {
  AppendMeasureEntries(label, overall, group_counts, options, entries);
  return Status::OK();
}

Result<AuditReport> FairnessAuditor::AuditSingle(
    const std::vector<PairOutcome>& outcomes,
    const AuditOptions& options) const {
  Span span("fairem.audit.single");
  span.AddArg("outcomes", std::to_string(outcomes.size()));
  span.AddArg("groups", std::to_string(membership_.groups().size()));
  AuditReport report;
  const ConfusionCounts overall = OverallCounts(outcomes);
  for (const auto& group : membership_.groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask, membership_.encoding().Encode({group}));
    ConfusionCounts counts = SingleGroupCounts(membership_, outcomes, mask);
    ConfusionCounts reference =
        options.reference == AuditReference::kComplement
            ? SingleGroupComplementCounts(membership_, outcomes, mask)
            : overall;
    FAIREM_RETURN_NOT_OK(
        AppendEntries(group, reference, counts, options, &report.entries));
  }
  return report;
}

Result<AuditReport> FairnessAuditor::AuditPairwise(
    const std::vector<PairOutcome>& outcomes,
    const AuditOptions& options) const {
  Span span("fairem.audit.pairwise");
  span.AddArg("outcomes", std::to_string(outcomes.size()));
  span.AddArg("groups", std::to_string(membership_.groups().size()));
  AuditReport report;
  const ConfusionCounts overall = OverallCounts(outcomes);
  const auto& groups = membership_.groups();
  for (size_t i = 0; i < groups.size(); ++i) {
    for (size_t j = i; j < groups.size(); ++j) {
      FAIREM_ASSIGN_OR_RETURN(uint64_t s,
                              membership_.encoding().Encode({groups[i]}));
      FAIREM_ASSIGN_OR_RETURN(uint64_t s_prime,
                              membership_.encoding().Encode({groups[j]}));
      ConfusionCounts counts =
          PairGroupCounts(membership_, outcomes, s, s_prime);
      ConfusionCounts reference =
          options.reference == AuditReference::kComplement
              ? PairGroupComplementCounts(membership_, outcomes, s, s_prime)
              : overall;
      std::string label = groups[i] + " | " + groups[j];
      FAIREM_RETURN_NOT_OK(
          AppendEntries(label, reference, counts, options, &report.entries));
    }
  }
  return report;
}

Result<AuditReport> FairnessAuditor::AuditSingleOrdered(
    const std::vector<PairOutcome>& outcomes, PairSide side,
    const AuditOptions& options) const {
  Span span("fairem.audit.single_ordered");
  span.AddArg("outcomes", std::to_string(outcomes.size()));
  AuditReport report;
  const ConfusionCounts overall = OverallCounts(outcomes);
  const char* suffix = side == PairSide::kLeft ? " (left)" : " (right)";
  for (const auto& group : membership_.groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                            membership_.encoding().Encode({group}));
    ConfusionCounts counts =
        OrderedSingleGroupCounts(membership_, outcomes, mask, side);
    // The complement reference for the ordered variant is "every pair whose
    // `side` record is outside the group"; derive it from the totals.
    ConfusionCounts reference = overall;
    if (options.reference == AuditReference::kComplement) {
      reference.tp -= counts.tp;
      reference.fp -= counts.fp;
      reference.tn -= counts.tn;
      reference.fn -= counts.fn;
    }
    FAIREM_RETURN_NOT_OK(AppendEntries(group + suffix, reference, counts,
                                       options, &report.entries));
  }
  return report;
}

Result<AuditReport> FairnessAuditor::AuditPairwiseOrdered(
    const std::vector<PairOutcome>& outcomes,
    const AuditOptions& options) const {
  Span span("fairem.audit.pairwise_ordered");
  span.AddArg("outcomes", std::to_string(outcomes.size()));
  AuditReport report;
  const ConfusionCounts overall = OverallCounts(outcomes);
  const auto& groups = membership_.groups();
  for (const auto& left : groups) {
    for (const auto& right : groups) {
      FAIREM_ASSIGN_OR_RETURN(uint64_t s, membership_.encoding().Encode({left}));
      FAIREM_ASSIGN_OR_RETURN(uint64_t s_prime,
                              membership_.encoding().Encode({right}));
      ConfusionCounts counts =
          OrderedPairGroupCounts(membership_, outcomes, s, s_prime);
      ConfusionCounts reference = overall;
      if (options.reference == AuditReference::kComplement) {
        reference.tp -= counts.tp;
        reference.fp -= counts.fp;
        reference.tn -= counts.tn;
        reference.fn -= counts.fn;
      }
      std::string label = left + " -> " + right;
      FAIREM_RETURN_NOT_OK(
          AppendEntries(label, reference, counts, options, &report.entries));
    }
  }
  return report;
}

Result<AuditReport> FairnessAuditor::AuditSubgroups(
    const std::vector<Subgroup>& subgroups,
    const std::vector<PairOutcome>& outcomes,
    const AuditOptions& options) const {
  Span span("fairem.audit.subgroups");
  span.AddArg("outcomes", std::to_string(outcomes.size()));
  span.AddArg("subgroups", std::to_string(subgroups.size()));
  AuditReport report;
  const ConfusionCounts overall = OverallCounts(outcomes);
  for (const auto& sg : subgroups) {
    Result<uint64_t> mask = membership_.encoding().Encode(sg.groups);
    if (!mask.ok()) continue;  // subgroup mentions a group absent from data
    ConfusionCounts counts = SingleGroupCounts(membership_, outcomes, *mask);
    ConfusionCounts reference =
        options.reference == AuditReference::kComplement
            ? SingleGroupComplementCounts(membership_, outcomes, *mask)
            : overall;
    FAIREM_RETURN_NOT_OK(AppendEntries(sg.Label(), reference, counts, options,
                                       &report.entries));
  }
  return report;
}

}  // namespace fairem
