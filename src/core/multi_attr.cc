#include "src/core/multi_attr.h"

#include <set>

#include "src/core/group.h"

namespace fairem {

Result<MultiAttrAuditor> MultiAttrAuditor::Make(
    const Table& a, const Table& b, std::vector<SensitiveAttr> attrs) {
  MultiAttrAuditor auditor;
  for (const auto& attr : attrs) {
    FAIREM_ASSIGN_OR_RETURN(GroupExtractor ea, GroupExtractor::Make(a, attr));
    FAIREM_ASSIGN_OR_RETURN(GroupExtractor eb, GroupExtractor::Make(b, attr));
    AttrDomain domain;
    domain.attr = attr;
    domain.domain = UnionGroups(ea, eb);
    auditor.domains_.push_back(std::move(domain));
  }
  FAIREM_ASSIGN_OR_RETURN(GroupMembership membership,
                          GroupMembership::MakeMulti(a, b, attrs));
  auditor.membership_ =
      std::make_unique<GroupMembership>(std::move(membership));
  return auditor;
}

Result<AuditReport> MultiAttrAuditor::AuditLevel(
    int level, const std::vector<PairOutcome>& outcomes,
    const AuditOptions& options) const {
  FAIREM_ASSIGN_OR_RETURN(std::vector<Subgroup> subgroups,
                          EnumerateLevel(domains_, level));
  AuditReport report;
  const ConfusionCounts overall = OverallCounts(outcomes);
  for (const auto& sg : subgroups) {
    Result<uint64_t> mask = membership_->encoding().Encode(sg.groups);
    if (!mask.ok()) continue;
    ConfusionCounts counts = SingleGroupCounts(*membership_, outcomes, *mask);
    ConfusionCounts reference =
        options.reference == AuditReference::kComplement
            ? SingleGroupComplementCounts(*membership_, outcomes, *mask)
            : overall;
    AppendMeasureEntries(sg.Label(), reference, counts, options,
                         &report.entries);
  }
  return report;
}

}  // namespace fairem
