#ifndef FAIREM_CORE_ENCODING_H_
#define FAIREM_CORE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Binary group encodings (Appendix A of the paper).
///
/// Fixes an ordered universe of level-1 groups g_1..g_m and represents
/// subgroups and entities as m-bit masks: bit i is set iff g_i is in the
/// set. An entity belongs to a subgroup s iff (s AND e) == s. Pair
/// encodings are the concatenation of the two entity encodings, checked in
/// both directions for non-directional pairwise fairness.
class GroupEncoding {
 public:
  /// `groups` is the ordered level-1 universe (≤ 64 groups; datasets in the
  /// paper's regime have ≤ ~30).
  static Result<GroupEncoding> Make(std::vector<std::string> groups);

  size_t num_groups() const { return groups_.size(); }
  const std::vector<std::string>& groups() const { return groups_; }

  /// Bit index of a group name, or NotFound.
  Result<int> IndexOf(const std::string& group) const;

  /// Encodes a set of group names into a mask. Unknown names -> NotFound.
  Result<uint64_t> Encode(const std::vector<std::string>& names) const;

  /// Decodes a mask back into sorted group names.
  std::vector<std::string> Decode(uint64_t mask) const;

  /// True iff the entity with `entity_mask` belongs to the subgroup
  /// `subgroup_mask` (s AND e == s). The empty subgroup contains everyone.
  static bool Belongs(uint64_t entity_mask, uint64_t subgroup_mask) {
    return (entity_mask & subgroup_mask) == subgroup_mask;
  }

  /// Non-directional pairwise membership: the pair (e_i, e_j) is legitimate
  /// for (s, s') iff (e_i∈s ∧ e_j∈s') ∨ (e_i∈s' ∧ e_j∈s)  (§3.2.2).
  static bool PairBelongs(uint64_t left_mask, uint64_t right_mask,
                          uint64_t s, uint64_t s_prime) {
    return (Belongs(left_mask, s) && Belongs(right_mask, s_prime)) ||
           (Belongs(left_mask, s_prime) && Belongs(right_mask, s));
  }

 private:
  std::vector<std::string> groups_;
};

}  // namespace fairem

#endif  // FAIREM_CORE_ENCODING_H_
