#include "src/ml/classifier.h"

namespace fairem {

std::vector<double> Classifier::PredictScores(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> scores;
  scores.reserve(x.size());
  for (const auto& row : x) scores.push_back(PredictScore(row));
  return scores;
}

Status Classifier::ValidateTrainingData(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y) {
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("feature/label count mismatch");
  }
  size_t dim = x[0].size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional features");
  for (const auto& row : x) {
    if (row.size() != dim) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
  }
  return Status::OK();
}

}  // namespace fairem
