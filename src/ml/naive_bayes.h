#ifndef FAIREM_ML_NAIVE_BAYES_H_
#define FAIREM_ML_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "src/ml/classifier.h"

namespace fairem {

/// Gaussian naive Bayes: per-class, per-feature normal densities with a
/// variance floor. Scores are the posterior probability of the match class.
/// Under extreme class imbalance NB's independence assumption tends to
/// over-fire on rare high-similarity non-matches, reproducing the paper's
/// NBMatcher PPV collapse on FacultyMatch (Table 6).
struct NaiveBayesOptions {
  /// Added to every variance to avoid zero-variance spikes.
  double var_smoothing = 1e-3;
};

class GaussianNaiveBayes : public Classifier {
 public:
  explicit GaussianNaiveBayes(NaiveBayesOptions options = {})
      : options_(options) {}

  std::string name() const override { return "naive_bayes"; }
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, Rng* rng) override;
  double PredictScore(const std::vector<double>& x) const override;

 private:
  NaiveBayesOptions options_;
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
  double log_prior_[2] = {0.0, 0.0};
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_ML_NAIVE_BAYES_H_
