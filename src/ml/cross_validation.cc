#include "src/ml/cross_validation.h"

#include <cmath>
#include <memory>

namespace fairem {

Result<CrossValidationResult> StratifiedKFold(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    int k, uint64_t seed, double threshold) {
  if (k < 2) return Status::InvalidArgument("k must be >= 2");
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("bad training data");
  }
  Rng rng(seed);
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? positives : negatives).push_back(i);
  }
  if (static_cast<int>(positives.size()) < k ||
      static_cast<int>(negatives.size()) < k) {
    return Status::InvalidArgument(
        "each class needs at least k examples for stratified folds");
  }
  rng.Shuffle(&positives);
  rng.Shuffle(&negatives);
  // fold id per example, assigned round-robin within each class.
  std::vector<int> fold(y.size());
  for (size_t i = 0; i < positives.size(); ++i) {
    fold[positives[i]] = static_cast<int>(i % static_cast<size_t>(k));
  }
  for (size_t i = 0; i < negatives.size(); ++i) {
    fold[negatives[i]] = static_cast<int>(i % static_cast<size_t>(k));
  }

  CrossValidationResult result;
  for (int f = 0; f < k; ++f) {
    std::vector<std::vector<double>> train_x;
    std::vector<int> train_y;
    std::vector<std::vector<double>> test_x;
    std::vector<int> test_y;
    for (size_t i = 0; i < x.size(); ++i) {
      if (fold[i] == f) {
        test_x.push_back(x[i]);
        test_y.push_back(y[i]);
      } else {
        train_x.push_back(x[i]);
        train_y.push_back(y[i]);
      }
    }
    std::unique_ptr<Classifier> clf = factory();
    Rng fold_rng = rng.Fork();
    FAIREM_RETURN_NOT_OK(clf->Fit(train_x, train_y, &fold_rng));
    ConfusionCounts counts;
    for (size_t i = 0; i < test_x.size(); ++i) {
      counts.Add(clf->PredictScore(test_x[i]) >= threshold, test_y[i] == 1);
    }
    result.fold_f1.push_back(F1Score(counts).value_or(0.0));
  }
  for (double f1 : result.fold_f1) result.mean_f1 += f1;
  result.mean_f1 /= static_cast<double>(k);
  for (double f1 : result.fold_f1) {
    result.std_f1 += (f1 - result.mean_f1) * (f1 - result.mean_f1);
  }
  result.std_f1 = std::sqrt(result.std_f1 / static_cast<double>(k));
  return result;
}

}  // namespace fairem
