#include "src/ml/metrics.h"

namespace fairem {
namespace {

Result<double> Ratio(int64_t num, int64_t denom, const char* what) {
  if (denom == 0) {
    return Status::UndefinedStatistic(std::string(what) +
                                      " has empty denominator");
  }
  return static_cast<double>(num) / static_cast<double>(denom);
}

}  // namespace

Result<double> Accuracy(const ConfusionCounts& c) {
  return Ratio(c.tp + c.tn, c.total(), "accuracy");
}

Result<double> Precision(const ConfusionCounts& c) {
  return Ratio(c.tp, c.tp + c.fp, "precision");
}

Result<double> Recall(const ConfusionCounts& c) {
  return Ratio(c.tp, c.tp + c.fn, "recall");
}

Result<double> F1Score(const ConfusionCounts& c) {
  // F1 = 2TP / (2TP + FP + FN); defined whenever any of TP/FP/FN exists.
  return Ratio(2 * c.tp, 2 * c.tp + c.fp + c.fn, "f1");
}

Result<double> TruePositiveRate(const ConfusionCounts& c) {
  return Ratio(c.tp, c.tp + c.fn, "tpr");
}

Result<double> FalsePositiveRate(const ConfusionCounts& c) {
  return Ratio(c.fp, c.fp + c.tn, "fpr");
}

Result<double> TrueNegativeRate(const ConfusionCounts& c) {
  return Ratio(c.tn, c.tn + c.fp, "tnr");
}

Result<double> FalseNegativeRate(const ConfusionCounts& c) {
  return Ratio(c.fn, c.fn + c.tp, "fnr");
}

Result<double> PositivePredictiveValue(const ConfusionCounts& c) {
  return Ratio(c.tp, c.tp + c.fp, "ppv");
}

Result<double> NegativePredictiveValue(const ConfusionCounts& c) {
  return Ratio(c.tn, c.tn + c.fn, "npv");
}

Result<double> FalseDiscoveryRate(const ConfusionCounts& c) {
  return Ratio(c.fp, c.tp + c.fp, "fdr");
}

Result<double> FalseOmissionRate(const ConfusionCounts& c) {
  return Ratio(c.fn, c.tn + c.fn, "for");
}

Result<double> PositivePredictionRate(const ConfusionCounts& c) {
  return Ratio(c.tp + c.fp, c.total(), "positive_prediction_rate");
}

Result<ConfusionCounts> CountsFromScores(const std::vector<double>& scores,
                                         const std::vector<int>& labels,
                                         double threshold) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  ConfusionCounts c;
  for (size_t i = 0; i < scores.size(); ++i) {
    c.Add(scores[i] >= threshold, labels[i] == 1);
  }
  return c;
}

}  // namespace fairem
