#ifndef FAIREM_ML_CLASSIFIER_H_
#define FAIREM_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {

/// A binary probabilistic classifier over dense feature vectors.
///
/// Implementations are deterministic given the Rng passed to Fit. Scores are
/// confidences in [0, 1]; thresholding into match/non-match decisions is the
/// caller's job (the paper decouples thresholds from matcher outputs, §3.1).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::string name() const = 0;

  /// Trains on feature matrix `x` (rows = examples) with 0/1 labels `y`.
  /// Returns InvalidArgument on shape mismatch or empty input.
  virtual Status Fit(const std::vector<std::vector<double>>& x,
                     const std::vector<int>& y, Rng* rng) = 0;

  /// Match confidence in [0, 1] for one feature vector. Must be called
  /// after a successful Fit.
  virtual double PredictScore(const std::vector<double>& x) const = 0;

  /// Batch scoring: scores[i] = PredictScore(x[i]). The default is the
  /// sequential loop; classifiers with an expensive per-row predict
  /// (RandomForest) override it to chunk the rows over the intra-cell
  /// thread pool — output order is by row index either way, so results are
  /// byte-identical across `--intra_jobs` settings.
  virtual std::vector<double> PredictScores(
      const std::vector<std::vector<double>>& x) const;

 protected:
  /// Shared input validation for Fit implementations.
  static Status ValidateTrainingData(const std::vector<std::vector<double>>& x,
                                     const std::vector<int>& y);
};

}  // namespace fairem

#endif  // FAIREM_ML_CLASSIFIER_H_
