#ifndef FAIREM_ML_RANDOM_FOREST_H_
#define FAIREM_ML_RANDOM_FOREST_H_

#include <string>
#include <vector>

#include "src/ml/decision_tree.h"

namespace fairem {

/// Bagged ensemble of CART trees with per-split feature subsampling
/// (sqrt(d) features per split by default). Score = mean of tree scores.
///
/// Fit pre-draws one RNG seed per tree from the caller's generator, then
/// builds the trees (bootstrap + split subsampling on the per-tree stream)
/// in parallel over the intra-cell pool — the fitted forest is
/// bit-identical for any `--intra_jobs`, because tree t's randomness never
/// depends on how many trees fit concurrently. PredictScores chunks rows
/// the same way.
struct RandomForestOptions {
  int num_trees = 20;
  TreeOptions tree;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {})
      : options_(options) {}

  std::string name() const override { return "random_forest"; }

  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, Rng* rng) override;

  double PredictScore(const std::vector<double>& x) const override;

  std::vector<double> PredictScores(
      const std::vector<std::vector<double>>& x) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace fairem

#endif  // FAIREM_ML_RANDOM_FOREST_H_
