#ifndef FAIREM_ML_CROSS_VALIDATION_H_
#define FAIREM_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/metrics.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {

/// Result of one cross-validation run.
struct CrossValidationResult {
  std::vector<double> fold_f1;
  double mean_f1 = 0.0;
  double std_f1 = 0.0;
};

/// Stratified k-fold cross-validation of a classifier factory on a labelled
/// feature matrix: positives and negatives are split into k folds
/// separately so every fold preserves the (extreme, in EM) class ratio.
/// `factory` creates a fresh classifier per fold.
Result<CrossValidationResult> StratifiedKFold(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    int k, uint64_t seed, double threshold = 0.5);

}  // namespace fairem

#endif  // FAIREM_ML_CROSS_VALIDATION_H_
