#include "src/ml/random_forest.h"

#include <cmath>

#include "src/util/logging.h"

namespace fairem {

Status RandomForest::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y, Rng* rng) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  trees_.clear();
  const size_t n = x.size();
  const size_t dim = x[0].size();
  TreeOptions tree_opts = options_.tree;
  if (tree_opts.max_features == 0) {
    tree_opts.max_features =
        std::max(1, static_cast<int>(std::sqrt(static_cast<double>(dim))));
  }
  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::vector<double>> bx;
    std::vector<int> by;
    bx.reserve(n);
    by.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      size_t idx = static_cast<size_t>(rng->NextBounded(n));
      bx.push_back(x[idx]);
      by.push_back(y[idx]);
    }
    DecisionTree tree(tree_opts);
    FAIREM_RETURN_NOT_OK(tree.Fit(bx, by, rng));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::PredictScore(const std::vector<double>& x) const {
  FAIREM_CHECK(!trees_.empty(), "RandomForest::PredictScore before Fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.PredictScore(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace fairem
