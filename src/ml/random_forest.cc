#include "src/ml/random_forest.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace fairem {

Status RandomForest::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y, Rng* rng) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  trees_.clear();
  const size_t n = x.size();
  const size_t dim = x[0].size();
  TreeOptions tree_opts = options_.tree;
  if (tree_opts.max_features == 0) {
    tree_opts.max_features =
        std::max(1, static_cast<int>(std::sqrt(static_cast<double>(dim))));
  }
  const size_t num_trees = static_cast<size_t>(options_.num_trees);
  // Every tree gets its own decorrelated RNG stream, pre-drawn from the
  // caller's generator in tree order. This is what makes the parallel fit
  // deterministic: tree t consumes only stream t (bootstrap + split
  // subsampling), so the forest is bit-identical whether the trees are
  // built sequentially or on N pool threads.
  std::vector<uint64_t> tree_seeds;
  tree_seeds.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    tree_seeds.push_back(rng->Next());
  }
  trees_.assign(num_trees, DecisionTree(tree_opts));
  std::vector<Status> tree_status(num_trees, Status::OK());
  GlobalThreadPool().ParallelFor(
      num_trees, /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t t = begin; t < end; ++t) {
          Rng tree_rng(tree_seeds[t]);
          // Bootstrap sample.
          std::vector<std::vector<double>> bx;
          std::vector<int> by;
          bx.reserve(n);
          by.reserve(n);
          for (size_t i = 0; i < n; ++i) {
            size_t idx = static_cast<size_t>(tree_rng.NextBounded(n));
            bx.push_back(x[idx]);
            by.push_back(y[idx]);
          }
          DecisionTree tree(tree_opts);
          tree_status[t] = tree.Fit(bx, by, &tree_rng);
          if (tree_status[t].ok()) trees_[t] = std::move(tree);
        }
      });
  for (size_t t = 0; t < num_trees; ++t) {
    if (!tree_status[t].ok()) {
      trees_.clear();
      return tree_status[t];
    }
  }
  return Status::OK();
}

double RandomForest::PredictScore(const std::vector<double>& x) const {
  FAIREM_CHECK(!trees_.empty(), "RandomForest::PredictScore before Fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.PredictScore(x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::PredictScores(
    const std::vector<std::vector<double>>& x) const {
  FAIREM_CHECK(!trees_.empty(), "RandomForest::PredictScores before Fit");
  std::vector<double> scores(x.size(), 0.0);
  // Rows are independent and each writes its own slot, so chunking over
  // the pool keeps the output byte-identical to the sequential loop.
  GlobalThreadPool().ParallelFor(x.size(), /*grain=*/0,
                                 [&](size_t begin, size_t end) {
                                   for (size_t i = begin; i < end; ++i) {
                                     scores[i] = PredictScore(x[i]);
                                   }
                                 });
  return scores;
}

}  // namespace fairem
