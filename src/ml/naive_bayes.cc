#include "src/ml/naive_bayes.h"

#include <cmath>

#include "src/util/logging.h"

namespace fairem {

Status GaussianNaiveBayes::Fit(const std::vector<std::vector<double>>& x,
                               const std::vector<int>& y, Rng* /*rng*/) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  const size_t dim = x[0].size();
  size_t counts[2] = {0, 0};
  for (int cls = 0; cls < 2; ++cls) {
    mean_[cls].assign(dim, 0.0);
    var_[cls].assign(dim, 0.0);
  }
  for (size_t i = 0; i < x.size(); ++i) {
    int cls = y[i];
    ++counts[cls];
    for (size_t d = 0; d < dim; ++d) mean_[cls][d] += x[i][d];
  }
  if (counts[0] == 0 || counts[1] == 0) {
    return Status::InvalidArgument(
        "naive bayes requires both classes in training data");
  }
  for (int cls = 0; cls < 2; ++cls) {
    for (size_t d = 0; d < dim; ++d) {
      mean_[cls][d] /= static_cast<double>(counts[cls]);
    }
  }
  for (size_t i = 0; i < x.size(); ++i) {
    int cls = y[i];
    for (size_t d = 0; d < dim; ++d) {
      double diff = x[i][d] - mean_[cls][d];
      var_[cls][d] += diff * diff;
    }
  }
  for (int cls = 0; cls < 2; ++cls) {
    for (size_t d = 0; d < dim; ++d) {
      var_[cls][d] =
          var_[cls][d] / static_cast<double>(counts[cls]) +
          options_.var_smoothing;
    }
    log_prior_[cls] = std::log(static_cast<double>(counts[cls]) /
                               static_cast<double>(x.size()));
  }
  fitted_ = true;
  return Status::OK();
}

double GaussianNaiveBayes::PredictScore(const std::vector<double>& x) const {
  FAIREM_CHECK(fitted_, "GaussianNaiveBayes::PredictScore before Fit");
  double log_like[2];
  for (int cls = 0; cls < 2; ++cls) {
    double ll = log_prior_[cls];
    size_t dim = mean_[cls].size();
    for (size_t d = 0; d < dim && d < x.size(); ++d) {
      double diff = x[d] - mean_[cls][d];
      ll += -0.5 * std::log(2.0 * M_PI * var_[cls][d]) -
            diff * diff / (2.0 * var_[cls][d]);
    }
    log_like[cls] = ll;
  }
  // Posterior of class 1 via the log-sum-exp trick.
  double m = std::max(log_like[0], log_like[1]);
  double e0 = std::exp(log_like[0] - m);
  double e1 = std::exp(log_like[1] - m);
  return e1 / (e0 + e1);
}

}  // namespace fairem
