#ifndef FAIREM_ML_CALIBRATION_H_
#define FAIREM_ML_CALIBRATION_H_

#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Platt scaling: fits sigmoid(a * score + b) to held-out labels so a
/// matcher's raw confidences become calibrated probabilities. §5.3.4 shows
/// fairness is sensitive to the matching threshold; calibrated scores make
/// the 0.5 cut meaningful across matchers.
class PlattCalibrator {
 public:
  PlattCalibrator() = default;

  /// Fits (a, b) by gradient descent on the log-loss of the validation
  /// scores. Requires both classes present.
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels);

  /// sigmoid(a * score + b); Fit must have succeeded.
  Result<double> Calibrate(double score) const;

  /// Applies Calibrate to a whole score vector.
  Result<std::vector<double>> CalibrateAll(
      const std::vector<double>& scores) const;

  double a() const { return a_; }
  double b() const { return b_; }
  bool fitted() const { return fitted_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_ML_CALIBRATION_H_
