#include "src/ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace fairem {
namespace {

double GiniFromCounts(double pos, double total) {
  if (total <= 0.0) return 0.0;
  double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y, Rng* rng) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  nodes_.clear();
  std::vector<size_t> indices(x.size());
  for (size_t i = 0; i < x.size(); ++i) indices[i] = i;
  BuildNode(x, y, indices, 0, rng);
  fitted_ = true;
  return Status::OK();
}

int DecisionTree::BuildNode(const std::vector<std::vector<double>>& x,
                            const std::vector<int>& y,
                            std::vector<size_t>& indices, int depth,
                            Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double pos = 0.0;
  for (size_t i : indices) pos += y[i];
  const double total = static_cast<double>(indices.size());
  nodes_[node_id].score = total > 0.0 ? pos / total : 0.0;

  const bool pure = (pos == 0.0 || pos == total);
  if (pure || depth >= options_.max_depth ||
      indices.size() < static_cast<size_t>(options_.min_samples_split)) {
    return node_id;
  }

  const size_t dim = x[0].size();
  // Candidate features (optionally a random subset for forests).
  std::vector<size_t> features;
  if (options_.max_features > 0 &&
      static_cast<size_t>(options_.max_features) < dim) {
    features =
        rng->SampleWithoutReplacement(dim, static_cast<size_t>(options_.max_features));
  } else {
    features.resize(dim);
    for (size_t f = 0; f < dim; ++f) features[f] = f;
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_gini = GiniFromCounts(pos, total);

  std::vector<std::pair<double, int>> sorted_vals;
  sorted_vals.reserve(indices.size());
  for (size_t f : features) {
    sorted_vals.clear();
    for (size_t i : indices) {
      sorted_vals.emplace_back(x[i][f], y[i]);
    }
    std::sort(sorted_vals.begin(), sorted_vals.end());
    // Sweep split points between distinct consecutive values.
    double left_pos = 0.0;
    for (size_t k = 0; k + 1 < sorted_vals.size(); ++k) {
      left_pos += sorted_vals[k].second;
      if (sorted_vals[k].first == sorted_vals[k + 1].first) continue;
      double left_n = static_cast<double>(k + 1);
      double right_n = total - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double right_pos = pos - left_pos;
      double weighted =
          (left_n / total) * GiniFromCounts(left_pos, left_n) +
          (right_n / total) * GiniFromCounts(right_pos, right_n);
      double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted_vals[k].first + sorted_vals[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (size_t i : indices) {
    if (x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left_child = BuildNode(x, y, left_idx, depth + 1, rng);
  int right_child = BuildNode(x, y, right_idx, depth + 1, rng);
  nodes_[node_id].left = left_child;
  nodes_[node_id].right = right_child;
  return node_id;
}

double DecisionTree::PredictScore(const std::vector<double>& x) const {
  FAIREM_CHECK(fitted_, "DecisionTree::PredictScore before Fit");
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    size_t f = static_cast<size_t>(n.feature);
    double v = f < x.size() ? x[f] : 0.0;
    node = v <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].score;
}

std::vector<double> DecisionTree::FeatureImportances(
    size_t num_features) const {
  std::vector<double> importances(num_features, 0.0);
  double total = 0.0;
  for (const Node& n : nodes_) {
    if (n.feature >= 0 && static_cast<size_t>(n.feature) < num_features) {
      importances[static_cast<size_t>(n.feature)] += 1.0;
      total += 1.0;
    }
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

}  // namespace fairem
