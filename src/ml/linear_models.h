#ifndef FAIREM_ML_LINEAR_MODELS_H_
#define FAIREM_ML_LINEAR_MODELS_H_

#include <string>
#include <vector>

#include "src/ml/classifier.h"

namespace fairem {

/// Shared hyper-parameters for the gradient-trained linear models.
struct LinearOptions {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 200;
  int batch_size = 32;
  /// Exponent of the inverse-frequency class weights: 0 = unweighted,
  /// 0.5 = sqrt-balanced (default), 1 = sklearn's class_weight="balanced".
  /// EM training data is extremely imbalanced (§3.5); unweighted training
  /// collapses to the majority class, while full balancing shifts the 0.5
  /// threshold to a balanced prior and over-predicts matches.
  double balance_power = 0.5;
};

/// Logistic regression trained with mini-batch SGD and L2 regularization.
/// Scores are sigmoid probabilities.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LinearOptions options = {})
      : options_(options) {}

  std::string name() const override { return "logistic_regression"; }
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, Rng* rng) override;
  double PredictScore(const std::vector<double>& x) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LinearOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

/// Ordinary least squares (ridge) regression on the 0/1 labels, used by
/// Magellan's LinRegMatcher. Solved in closed form (normal equations with
/// a small ridge term), exactly like sklearn's LinearRegression. Raw
/// predictions are clamped to [0, 1] so thresholding behaves like the
/// other matchers. Under class imbalance the squared loss pulls
/// predictions toward the prior, giving the low recall the paper reports
/// for LinRegMatcher.
class LinearRegression : public Classifier {
 public:
  explicit LinearRegression(double ridge = 1e-6) : ridge_(ridge) {}

  std::string name() const override { return "linear_regression"; }
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, Rng* rng) override;
  double PredictScore(const std::vector<double>& x) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  double ridge_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

/// Linear SVM trained with the Pegasos sub-gradient method on hinge loss.
/// Scores are a sigmoid of the margin so they land in [0, 1].
struct SvmOptions {
  double lambda = 1e-3;
  int epochs = 200;
};

class Svm : public Classifier {
 public:
  explicit Svm(SvmOptions options = {}) : options_(options) {}

  std::string name() const override { return "svm"; }
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, Rng* rng) override;
  double PredictScore(const std::vector<double>& x) const override;

  /// Raw signed margin w·x + b.
  double Margin(const std::vector<double>& x) const;
  const std::vector<double>& weights() const { return weights_; }

 private:
  SvmOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_ML_LINEAR_MODELS_H_
