#ifndef FAIREM_ML_METRICS_H_
#define FAIREM_ML_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Counts of a binary confusion matrix. The same structure is used for
/// whole-test-set correctness (Table 9) and for per-group fairness auditing
/// (Appendix B), where counts are accumulated per group.
struct ConfusionCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }
  void Add(bool predicted_match, bool true_match) {
    if (predicted_match && true_match) ++tp;
    else if (predicted_match && !true_match) ++fp;
    else if (!predicted_match && true_match) ++fn;
    else ++tn;
  }
  void Merge(const ConfusionCounts& other) {
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
  }
};

/// Each rate returns UndefinedStatistic when its denominator is zero; the
/// audit layer skips groups where a measure is undefined (§3.5's
/// inapplicable-measure cases) instead of producing NaNs.
Result<double> Accuracy(const ConfusionCounts& c);
Result<double> Precision(const ConfusionCounts& c);  // == PPV
Result<double> Recall(const ConfusionCounts& c);     // == TPR
Result<double> F1Score(const ConfusionCounts& c);
Result<double> TruePositiveRate(const ConfusionCounts& c);
Result<double> FalsePositiveRate(const ConfusionCounts& c);
Result<double> TrueNegativeRate(const ConfusionCounts& c);
Result<double> FalseNegativeRate(const ConfusionCounts& c);
Result<double> PositivePredictiveValue(const ConfusionCounts& c);
Result<double> NegativePredictiveValue(const ConfusionCounts& c);
Result<double> FalseDiscoveryRate(const ConfusionCounts& c);
Result<double> FalseOmissionRate(const ConfusionCounts& c);
/// Pr(h = 'M'): the positive-prediction rate used by statistical parity.
Result<double> PositivePredictionRate(const ConfusionCounts& c);

/// Confusion counts of thresholded scores vs labels. Scores >= `threshold`
/// are predicted matches. Sizes must agree.
Result<ConfusionCounts> CountsFromScores(const std::vector<double>& scores,
                                         const std::vector<int>& labels,
                                         double threshold);

}  // namespace fairem

#endif  // FAIREM_ML_METRICS_H_
