#include "src/ml/scaler.h"

#include <cmath>

namespace fairem {

Status StandardScaler::Fit(const std::vector<std::vector<double>>& x) {
  if (x.empty() || x[0].empty()) {
    return Status::InvalidArgument("scaler needs a non-empty matrix");
  }
  const size_t dim = x[0].size();
  means_.assign(dim, 0.0);
  stds_.assign(dim, 0.0);
  for (const auto& row : x) {
    if (row.size() != dim) {
      return Status::InvalidArgument("ragged matrix");
    }
    for (size_t d = 0; d < dim; ++d) means_[d] += row[d];
  }
  const double n = static_cast<double>(x.size());
  for (double& m : means_) m /= n;
  for (const auto& row : x) {
    for (size_t d = 0; d < dim; ++d) {
      double diff = row[d] - means_[d];
      stds_[d] += diff * diff;
    }
  }
  for (double& s : stds_) s = std::sqrt(s / n);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> StandardScaler::Transform(
    const std::vector<double>& row) const {
  if (!fitted_) return Status::FailedPrecondition("scaler not fitted");
  if (row.size() != means_.size()) {
    return Status::InvalidArgument("row width does not match fit");
  }
  std::vector<double> out(row.size());
  for (size_t d = 0; d < row.size(); ++d) {
    out[d] = stds_[d] > 0.0 ? (row[d] - means_[d]) / stds_[d] : 0.0;
  }
  return out;
}

Status StandardScaler::FitTransform(std::vector<std::vector<double>>* x) {
  FAIREM_RETURN_NOT_OK(Fit(*x));
  for (auto& row : *x) {
    FAIREM_ASSIGN_OR_RETURN(row, Transform(row));
  }
  return Status::OK();
}

}  // namespace fairem
