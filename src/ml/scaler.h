#ifndef FAIREM_ML_SCALER_H_
#define FAIREM_ML_SCALER_H_

#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Column-wise standardization (zero mean, unit variance). Similarity
/// features are already in [0, 1], but classifiers composed with external
/// numeric features (counts, prices) benefit from a common scale.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Learns per-column mean and standard deviation. Rows must be
  /// rectangular and non-empty.
  Status Fit(const std::vector<std::vector<double>>& x);

  /// (x - mean) / std per column; zero-variance columns map to 0. The row
  /// width must match the fitted width.
  Result<std::vector<double>> Transform(const std::vector<double>& row) const;

  /// Fit + transform all rows in place.
  Status FitTransform(std::vector<std::vector<double>>* x);

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }
  bool fitted() const { return fitted_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_ML_SCALER_H_
