#include "src/ml/linear_models.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace fairem {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

double Dot(const std::vector<double>& w, const std::vector<double>& x,
           double bias) {
  double z = bias;
  size_t n = std::min(w.size(), x.size());
  for (size_t i = 0; i < n; ++i) z += w[i] * x[i];
  return z;
}

/// Per-class example weights: (n / (2 * n_class)) ^ balance_power, or 1.0
/// when balancing is off or a class is absent.
std::pair<double, double> ClassWeights(const std::vector<int>& y,
                                       double balance_power) {
  if (balance_power <= 0.0) return {1.0, 1.0};
  double n_pos = 0.0;
  for (int label : y) n_pos += label;
  double n_neg = static_cast<double>(y.size()) - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) return {1.0, 1.0};
  double n = static_cast<double>(y.size());
  return {std::pow(n / (2.0 * n_neg), balance_power),
          std::pow(n / (2.0 * n_pos), balance_power)};
}

}  // namespace

Status LogisticRegression::Fit(const std::vector<std::vector<double>>& x,
                               const std::vector<int>& y, Rng* rng) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  const size_t n = x.size();
  const size_t dim = x[0].size();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  const auto [w_neg, w_pos] = ClassWeights(y, options_.balance_power);
  const size_t batch = std::max<size_t>(
      1, static_cast<size_t>(options_.batch_size));
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t start = 0; start < n; start += batch) {
      size_t end = std::min(n, start + batch);
      std::vector<double> grad_w(dim, 0.0);
      double grad_b = 0.0;
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        double p = Sigmoid(Dot(weights_, x[i], bias_));
        double err = (p - y[i]) * (y[i] == 1 ? w_pos : w_neg);
        for (size_t d = 0; d < dim; ++d) grad_w[d] += err * x[i][d];
        grad_b += err;
      }
      double scale = options_.learning_rate / static_cast<double>(end - start);
      for (size_t d = 0; d < dim; ++d) {
        weights_[d] -= scale * (grad_w[d] + options_.l2 * weights_[d]);
      }
      bias_ -= scale * grad_b;
    }
  }
  fitted_ = true;
  return Status::OK();
}

double LogisticRegression::PredictScore(const std::vector<double>& x) const {
  FAIREM_CHECK(fitted_, "LogisticRegression::PredictScore before Fit");
  return Sigmoid(Dot(weights_, x, bias_));
}

Status LinearRegression::Fit(const std::vector<std::vector<double>>& x,
                             const std::vector<int>& y, Rng* /*rng*/) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  const size_t n = x.size();
  const size_t d = x[0].size() + 1;  // + intercept column
  // Normal equations: (X^T X + ridge I) w = X^T y, solved by Gaussian
  // elimination with partial pivoting (d is the feature count, tiny).
  std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < d; ++r) {
      double xr = r + 1 < d ? x[i][r] : 1.0;
      for (size_t c = r; c < d; ++c) {
        double xc = c + 1 < d ? x[i][c] : 1.0;
        a[r][c] += xr * xc;
      }
      b[r] += xr * y[i];
    }
  }
  for (size_t r = 0; r < d; ++r) {
    a[r][r] += ridge_;
    for (size_t c = 0; c < r; ++c) a[r][c] = a[c][r];
  }
  // Gaussian elimination.
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::Internal("singular normal-equation matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = col + 1; r < d; ++r) {
      double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < d; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> solution(d, 0.0);
  for (size_t col = d; col-- > 0;) {
    double acc = b[col];
    for (size_t c = col + 1; c < d; ++c) acc -= a[col][c] * solution[c];
    solution[col] = acc / a[col][col];
  }
  weights_.assign(solution.begin(), solution.end() - 1);
  bias_ = solution.back();
  fitted_ = true;
  return Status::OK();
}

double LinearRegression::PredictScore(const std::vector<double>& x) const {
  FAIREM_CHECK(fitted_, "LinearRegression::PredictScore before Fit");
  return std::clamp(Dot(weights_, x, bias_), 0.0, 1.0);
}

Status Svm::Fit(const std::vector<std::vector<double>>& x,
                const std::vector<int>& y, Rng* rng) {
  FAIREM_RETURN_NOT_OK(ValidateTrainingData(x, y));
  const size_t n = x.size();
  const size_t dim = x[0].size();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  // Class-balanced sampling: EM training data is extremely imbalanced
  // (§3.5), and plain hinge-loss SGD collapses to the majority class.
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < n; ++i) {
    (y[i] == 1 ? positives : negatives).push_back(i);
  }
  const bool balanced = !positives.empty() && !negatives.empty();
  // Pegasos: at step t, eta = 1 / (lambda * t).
  int64_t t = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t k = 0; k < n; ++k) {
      ++t;
      size_t i;
      if (balanced) {
        const std::vector<size_t>& pool =
            rng->NextBool(0.5) ? positives : negatives;
        i = pool[static_cast<size_t>(rng->NextBounded(pool.size()))];
      } else {
        i = static_cast<size_t>(rng->NextBounded(n));
      }
      double label = y[i] == 1 ? 1.0 : -1.0;
      double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      double margin = label * Dot(weights_, x[i], bias_);
      for (size_t d = 0; d < dim; ++d) {
        weights_[d] *= (1.0 - eta * options_.lambda);
      }
      if (margin < 1.0) {
        for (size_t d = 0; d < dim; ++d) {
          weights_[d] += eta * label * x[i][d];
        }
        bias_ += eta * label;
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double Svm::Margin(const std::vector<double>& x) const {
  FAIREM_CHECK(fitted_, "Svm::Margin before Fit");
  return Dot(weights_, x, bias_);
}

double Svm::PredictScore(const std::vector<double>& x) const {
  // Squash the margin so thresholding at 0.5 corresponds to the decision
  // boundary; the factor sharpens the transition like Platt scaling with a
  // fixed slope.
  return Sigmoid(2.0 * Margin(x));
}

}  // namespace fairem
