#include "src/ml/calibration.h"

#include <cmath>

namespace fairem {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status PlattCalibrator::Fit(const std::vector<double>& scores,
                            const std::vector<int>& labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    return Status::InvalidArgument("bad calibration data");
  }
  int64_t n_pos = 0;
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    n_pos += y;
  }
  if (n_pos == 0 || n_pos == static_cast<int64_t>(labels.size())) {
    return Status::InvalidArgument("calibration needs both classes");
  }
  // Platt's smoothed targets avoid saturating the sigmoid on separable
  // validation sets.
  const double n_neg = static_cast<double>(labels.size()) - n_pos;
  const double t_pos = (static_cast<double>(n_pos) + 1.0) /
                       (static_cast<double>(n_pos) + 2.0);
  const double t_neg = 1.0 / (n_neg + 2.0);

  double a = 1.0;
  double b = 0.0;
  constexpr int kEpochs = 500;
  constexpr double kLearningRate = 0.1;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      double target = labels[i] == 1 ? t_pos : t_neg;
      double p = Sigmoid(a * scores[i] + b);
      double err = p - target;
      grad_a += err * scores[i];
      grad_b += err;
    }
    double inv = kLearningRate / static_cast<double>(scores.size());
    a -= inv * grad_a;
    b -= inv * grad_b;
  }
  a_ = a;
  b_ = b;
  fitted_ = true;
  return Status::OK();
}

Result<double> PlattCalibrator::Calibrate(double score) const {
  if (!fitted_) return Status::FailedPrecondition("calibrator not fitted");
  return Sigmoid(a_ * score + b_);
}

Result<std::vector<double>> PlattCalibrator::CalibrateAll(
    const std::vector<double>& scores) const {
  std::vector<double> out;
  out.reserve(scores.size());
  for (double s : scores) {
    FAIREM_ASSIGN_OR_RETURN(double c, Calibrate(s));
    out.push_back(c);
  }
  return out;
}

}  // namespace fairem
