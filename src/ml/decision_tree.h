#ifndef FAIREM_ML_DECISION_TREE_H_
#define FAIREM_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/classifier.h"

namespace fairem {

/// Hyper-parameters shared by DecisionTree and RandomForest.
struct TreeOptions {
  int max_depth = 8;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// If > 0, each split considers only this many random features (set by
  /// RandomForest; 0 = consider all).
  int max_features = 0;
};

/// CART decision tree with Gini impurity. Leaf scores are the fraction of
/// positive training examples at the leaf, which yields a calibrated
/// confidence for thresholding.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  std::string name() const override { return "decision_tree"; }

  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<int>& y, Rng* rng) override;

  double PredictScore(const std::vector<double>& x) const override;

  /// Number of nodes in the fitted tree (0 before Fit). Exposed for tests.
  size_t num_nodes() const { return nodes_.size(); }

  /// How often each feature was chosen for a split, normalized to sum 1.
  /// Used by the audit narratives ("the model put high weight on title").
  std::vector<double> FeatureImportances(size_t num_features) const;

 private:
  struct Node {
    int feature = -1;       // -1 for leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double score = 0.0;      // leaf positive fraction
    int left = -1;
    int right = -1;
  };

  int BuildNode(const std::vector<std::vector<double>>& x,
                const std::vector<int>& y, std::vector<size_t>& indices,
                int depth, Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_ML_DECISION_TREE_H_
