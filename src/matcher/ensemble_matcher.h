#ifndef FAIREM_MATCHER_ENSEMBLE_MATCHER_H_
#define FAIREM_MATCHER_ENSEMBLE_MATCHER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/confusion.h"
#include "src/matcher/matcher.h"

namespace fairem {

/// The paper's closing recommendation (Table 8 / lesson vi), realized as a
/// matcher: train a *set* of candidate matchers, evaluate each per group on
/// the validation split, and route every pair to the matcher that performs
/// best for the group(s) it touches. Designed for a single sensitive
/// attribute with exclusive values; pairs touching two different groups are
/// routed by the left record's group (ties are rare under exclusive
/// groups). The paper leaves fairness-driven ensembling as future work —
/// this class implements exactly the per-group selection it sketches.
class PerGroupEnsembleMatcher : public Matcher {
 public:
  /// `pool` must be non-empty; the ensemble takes ownership.
  explicit PerGroupEnsembleMatcher(std::vector<std::unique_ptr<Matcher>> pool);

  /// Convenience: the paper-suggested mixed pool (simple + complex
  /// boundaries from both families): DT, RF, LogReg, Ditto, DeepMatcher.
  static std::unique_ptr<PerGroupEnsembleMatcher> WithDefaultPool();

  std::string name() const override { return "PerGroupEnsemble"; }
  MatcherFamily family() const override { return MatcherFamily::kNonNeural; }

  /// Fits every pool member, then selects the best member per group by F1
  /// on the validation split (falling back to the train split when there is
  /// no validation data).
  Status Fit(const EMDataset& dataset, Rng* rng) override;

  Result<double> ScorePair(const EMDataset& dataset, size_t left,
                           size_t right) const override;
  Result<std::vector<double>> PredictScores(
      const EMDataset& dataset,
      const std::vector<LabeledPair>& pairs) const override;

  /// group -> name of the selected pool member (after Fit).
  const std::map<std::string, std::string>& selection() const {
    return selection_names_;
  }

 private:
  /// Index of the member routed for a pair.
  Result<size_t> RouteFor(size_t left, size_t right) const;

  std::vector<std::unique_ptr<Matcher>> pool_;
  std::unique_ptr<GroupMembership> membership_;
  std::map<uint64_t, size_t> route_;  // group mask -> pool index
  std::map<std::string, std::string> selection_names_;
  size_t default_member_ = 0;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_ENSEMBLE_MATCHER_H_
