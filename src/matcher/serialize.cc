#include "src/matcher/serialize.h"

#include "src/text/tokenize.h"

namespace fairem {

Result<std::vector<std::string>> AttributeTokens(const Table& table,
                                                 size_t row,
                                                 const std::string& attr) {
  FAIREM_ASSIGN_OR_RETURN(size_t col, table.schema().Index(attr));
  if (table.IsNull(row, col)) return std::vector<std::string>{};
  return AlnumTokenize(table.value(row, col));
}

Result<std::vector<std::string>> SerializeRecord(
    const Table& table, size_t row, const std::vector<std::string>& attrs) {
  std::vector<std::string> tokens;
  for (const auto& attr : attrs) {
    tokens.push_back("[col]");
    tokens.push_back(attr);
    tokens.push_back("[val]");
    FAIREM_ASSIGN_OR_RETURN(std::vector<std::string> vals,
                            AttributeTokens(table, row, attr));
    for (auto& v : vals) tokens.push_back(std::move(v));
  }
  return tokens;
}

Result<std::vector<std::vector<std::string>>> PerAttributeTokens(
    const Table& table, size_t row, const std::vector<std::string>& attrs) {
  std::vector<std::vector<std::string>> out;
  out.reserve(attrs.size());
  for (const auto& attr : attrs) {
    FAIREM_ASSIGN_OR_RETURN(std::vector<std::string> toks,
                            AttributeTokens(table, row, attr));
    out.push_back(std::move(toks));
  }
  return out;
}

}  // namespace fairem
