#ifndef FAIREM_MATCHER_HIER_MATCHER_H_
#define FAIREM_MATCHER_HIER_MATCHER_H_

#include <string>
#include <vector>

#include "src/matcher/neural_base.h"
#include "src/nn/vecops.h"

namespace fairem {

/// The HierMatcher model of Table 3 [27]: a token → attribute → record
/// hierarchy. Cross-attribute token alignment matches every token of one
/// record against all tokens of the other (not only the same attribute);
/// attribute-aware attention then weights token similarities into
/// attribute-level comparisons, and record-level aggregates feed the head.
/// Its reliance on embedding-space token similarity is the trait behind
/// the "efficient ≈ effective" false positives of §5.3.3.
class HierMatcherMatcher : public NeuralMatcherBase {
 public:
  HierMatcherMatcher();

  std::string name() const override { return "HierMatcher"; }

 protected:
  Status InitEncoder(const EMDataset& dataset, Rng* rng) override;
  Result<std::vector<float>> EncodePair(const EMDataset& dataset, size_t left,
                                        size_t right) const override;

 private:
  /// Attribute-aware attention vector (frozen): one weight direction per
  /// attribute scoring token relevance.
  std::vector<nn::Vec> attr_attention_;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_HIER_MATCHER_H_
