#ifndef FAIREM_MATCHER_DITTO_MATCHER_H_
#define FAIREM_MATCHER_DITTO_MATCHER_H_

#include <string>
#include <vector>

#include "src/matcher/neural_base.h"

namespace fairem {

/// The DITTO model of Table 3 [38]: both records are serialized into one
/// "[COL] a [VAL] v ..." token block and encoded with the pre-trained
/// language-model stand-in (SIF + self-attention pooling). Comparison is
/// purely at the sequence level — attribute structure is merged away, the
/// behaviour §5.3.3 identifies as DITTO's structured-data weakness. The
/// DITTO optimizations are modelled: sequence summarization (keep the
/// max_tokens highest-IDF-weight prefix), domain-knowledge injection
/// (attribute-name tokens stay in the stream), and training-time data
/// augmentation (random token dropout).
class DittoMatcher : public NeuralMatcherBase {
 public:
  DittoMatcher();

  std::string name() const override { return "Ditto"; }

 protected:
  Status InitEncoder(const EMDataset& dataset, Rng* rng) override;
  Result<std::vector<float>> EncodePair(const EMDataset& dataset, size_t left,
                                        size_t right) const override;
  Result<std::vector<float>> EncodePairForTraining(const EMDataset& dataset,
                                                   size_t left, size_t right,
                                                   Rng* rng) const override;

 private:
  /// Sequence summarization cap.
  static constexpr size_t kMaxTokens = 48;
  /// Augmentation dropout probability.
  static constexpr double kDropout = 0.1;

  Result<std::vector<float>> Encode(const EMDataset& dataset, size_t left,
                                    size_t right, Rng* augment_rng) const;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_DITTO_MATCHER_H_
