#include "src/matcher/matcher.h"

#include "src/matcher/dedupe_matcher.h"
#include "src/matcher/deepmatcher.h"
#include "src/matcher/ditto_matcher.h"
#include "src/matcher/gnem_matcher.h"
#include "src/matcher/hier_matcher.h"
#include "src/matcher/mcan_matcher.h"
#include "src/matcher/ml_matchers.h"
#include "src/matcher/rule_matcher.h"

namespace fairem {

const char* MatcherFamilyName(MatcherFamily family) {
  switch (family) {
    case MatcherFamily::kRuleBased:
      return "rule-based";
    case MatcherFamily::kNonNeural:
      return "non-neural";
    case MatcherFamily::kNeural:
      return "neural";
  }
  return "?";
}

Result<std::vector<double>> Matcher::PredictScores(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const auto& pair : pairs) {
    FAIREM_ASSIGN_OR_RETURN(double s,
                            ScorePair(dataset, pair.left, pair.right));
    scores.push_back(s);
  }
  return scores;
}

bool Matcher::SupportsDataset(const EMDataset& /*dataset*/) const {
  return true;
}

const char* MatcherKindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kBooleanRule:
      return "BooleanRuleMatcher";
    case MatcherKind::kDedupe:
      return "Dedupe";
    case MatcherKind::kDT:
      return "DTMatcher";
    case MatcherKind::kSvm:
      return "SVMMatcher";
    case MatcherKind::kRF:
      return "RFMatcher";
    case MatcherKind::kLogReg:
      return "LogRegMatcher";
    case MatcherKind::kLinReg:
      return "LinRegMatcher";
    case MatcherKind::kNB:
      return "NBMatcher";
    case MatcherKind::kDeepMatcher:
      return "DeepMatcher";
    case MatcherKind::kDitto:
      return "Ditto";
    case MatcherKind::kGnem:
      return "GNEM";
    case MatcherKind::kHierMatcher:
      return "HierMatcher";
    case MatcherKind::kMcan:
      return "MCAN";
  }
  return "?";
}

MatcherFamily FamilyOf(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kBooleanRule:
      return MatcherFamily::kRuleBased;
    case MatcherKind::kDedupe:
    case MatcherKind::kDT:
    case MatcherKind::kSvm:
    case MatcherKind::kRF:
    case MatcherKind::kLogReg:
    case MatcherKind::kLinReg:
    case MatcherKind::kNB:
      return MatcherFamily::kNonNeural;
    case MatcherKind::kDeepMatcher:
    case MatcherKind::kDitto:
    case MatcherKind::kGnem:
    case MatcherKind::kHierMatcher:
    case MatcherKind::kMcan:
      return MatcherFamily::kNeural;
  }
  return MatcherFamily::kNonNeural;
}

std::unique_ptr<Matcher> CreateMatcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kBooleanRule:
      return std::make_unique<BooleanRuleMatcher>();
    case MatcherKind::kDedupe:
      return std::make_unique<DedupeMatcher>();
    case MatcherKind::kDT:
      return MakeDTMatcher();
    case MatcherKind::kSvm:
      return MakeSvmMatcher();
    case MatcherKind::kRF:
      return MakeRFMatcher();
    case MatcherKind::kLogReg:
      return MakeLogRegMatcher();
    case MatcherKind::kLinReg:
      return MakeLinRegMatcher();
    case MatcherKind::kNB:
      return MakeNBMatcher();
    case MatcherKind::kDeepMatcher:
      return std::make_unique<DeepMatcherMatcher>();
    case MatcherKind::kDitto:
      return std::make_unique<DittoMatcher>();
    case MatcherKind::kGnem:
      return std::make_unique<GnemMatcher>();
    case MatcherKind::kHierMatcher:
      return std::make_unique<HierMatcherMatcher>();
    case MatcherKind::kMcan:
      return std::make_unique<McanMatcher>();
  }
  return nullptr;
}

std::vector<MatcherKind> AllMatcherKinds() {
  return {MatcherKind::kBooleanRule, MatcherKind::kDedupe, MatcherKind::kDT,
          MatcherKind::kSvm,         MatcherKind::kRF,     MatcherKind::kLogReg,
          MatcherKind::kLinReg,      MatcherKind::kNB,
          MatcherKind::kDeepMatcher, MatcherKind::kDitto,  MatcherKind::kGnem,
          MatcherKind::kHierMatcher, MatcherKind::kMcan};
}

std::vector<MatcherKind> NeuralMatcherKinds() {
  return {MatcherKind::kDeepMatcher, MatcherKind::kDitto, MatcherKind::kGnem,
          MatcherKind::kHierMatcher, MatcherKind::kMcan};
}

std::vector<MatcherKind> NonNeuralMatcherKinds() {
  return {MatcherKind::kDedupe, MatcherKind::kDT,     MatcherKind::kSvm,
          MatcherKind::kRF,     MatcherKind::kLogReg, MatcherKind::kLinReg,
          MatcherKind::kNB};
}

}  // namespace fairem
