#include "src/matcher/ml_matchers.h"

#include "src/ml/decision_tree.h"
#include "src/ml/linear_models.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"

namespace fairem {

Status FeatureClassifierMatcher::Fit(const EMDataset& dataset, Rng* rng) {
  FAIREM_ASSIGN_OR_RETURN(
      features_, GenerateFeatures(dataset.table_a, dataset.table_b,
                                  dataset.matching_attrs));
  if (features_.empty()) {
    return Status::InvalidArgument("no features generated for dataset '" +
                                   dataset.name + "'");
  }
  FAIREM_ASSIGN_OR_RETURN(
      FeatureTable table,
      BuildFeatureTable(features_, dataset.table_a, dataset.table_b,
                        dataset.train));
  std::vector<std::vector<double>> x = std::move(table.rows);
  std::vector<int> y = std::move(table.labels);
  FAIREM_RETURN_NOT_OK(classifier_->Fit(x, y, rng));
  fitted_ = true;
  return Status::OK();
}

Result<double> FeatureClassifierMatcher::ScorePair(const EMDataset& dataset,
                                                   size_t left,
                                                   size_t right) const {
  if (!fitted_) {
    return Status::FailedPrecondition("matcher '" + display_name_ +
                                      "' used before Fit");
  }
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<double> features,
      ExtractFeatures(features_, dataset.table_a, dataset.table_b, left,
                      right));
  return classifier_->PredictScore(features);
}

Result<std::vector<double>> FeatureClassifierMatcher::PredictScores(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  if (!fitted_) {
    return Status::FailedPrecondition("matcher '" + display_name_ +
                                      "' used before Fit");
  }
  FAIREM_ASSIGN_OR_RETURN(
      FeatureTable table,
      BuildFeatureTable(features_, dataset.table_a, dataset.table_b, pairs));
  return classifier_->PredictScores(table.rows);
}

std::unique_ptr<Matcher> MakeDTMatcher() {
  return std::make_unique<FeatureClassifierMatcher>(
      "DTMatcher", std::make_unique<DecisionTree>());
}

std::unique_ptr<Matcher> MakeSvmMatcher() {
  return std::make_unique<FeatureClassifierMatcher>("SVMMatcher",
                                                    std::make_unique<Svm>());
}

std::unique_ptr<Matcher> MakeRFMatcher() {
  return std::make_unique<FeatureClassifierMatcher>(
      "RFMatcher", std::make_unique<RandomForest>());
}

std::unique_ptr<Matcher> MakeLogRegMatcher() {
  return std::make_unique<FeatureClassifierMatcher>(
      "LogRegMatcher", std::make_unique<LogisticRegression>());
}

std::unique_ptr<Matcher> MakeLinRegMatcher() {
  return std::make_unique<FeatureClassifierMatcher>(
      "LinRegMatcher", std::make_unique<LinearRegression>());
}

std::unique_ptr<Matcher> MakeNBMatcher() {
  return std::make_unique<FeatureClassifierMatcher>(
      "NBMatcher", std::make_unique<GaussianNaiveBayes>());
}

}  // namespace fairem
