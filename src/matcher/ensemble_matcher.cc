#include "src/matcher/ensemble_matcher.h"

#include "src/core/group.h"
#include "src/harness/experiment.h"
#include "src/ml/metrics.h"

namespace fairem {

PerGroupEnsembleMatcher::PerGroupEnsembleMatcher(
    std::vector<std::unique_ptr<Matcher>> pool)
    : pool_(std::move(pool)) {}

std::unique_ptr<PerGroupEnsembleMatcher>
PerGroupEnsembleMatcher::WithDefaultPool() {
  std::vector<std::unique_ptr<Matcher>> pool;
  for (MatcherKind kind :
       {MatcherKind::kDT, MatcherKind::kRF, MatcherKind::kLogReg,
        MatcherKind::kDitto, MatcherKind::kDeepMatcher}) {
    pool.push_back(CreateMatcher(kind));
  }
  return std::make_unique<PerGroupEnsembleMatcher>(std::move(pool));
}

Status PerGroupEnsembleMatcher::Fit(const EMDataset& dataset, Rng* rng) {
  if (pool_.empty()) {
    return Status::InvalidArgument("ensemble pool is empty");
  }
  SensitiveAttr attr;
  attr.name = dataset.sensitive_attr;
  attr.kind = dataset.sensitive_kind;
  attr.setwise_separator = dataset.setwise_separator;
  FAIREM_ASSIGN_OR_RETURN(
      GroupMembership membership,
      GroupMembership::Make(dataset.table_a, dataset.table_b, attr));
  membership_ = std::make_unique<GroupMembership>(std::move(membership));

  const std::vector<LabeledPair>& selection_split =
      dataset.valid.empty() ? dataset.train : dataset.valid;

  // Fit every member (skipping unsupported ones) and score the selection
  // split once per member.
  std::vector<std::vector<double>> member_scores(pool_.size());
  std::vector<bool> usable(pool_.size(), false);
  for (size_t m = 0; m < pool_.size(); ++m) {
    if (!pool_[m]->SupportsDataset(dataset)) continue;
    Rng member_rng = rng->Fork();
    FAIREM_RETURN_NOT_OK(pool_[m]->Fit(dataset, &member_rng));
    FAIREM_ASSIGN_OR_RETURN(member_scores[m],
                            pool_[m]->PredictScores(dataset, selection_split));
    usable[m] = true;
  }

  // Per group, pick the member with the best validation F1 (Algorithm of
  // Table 8: "for each group use the matcher with best performance").
  route_.clear();
  selection_names_.clear();
  double best_overall = -1.0;
  for (size_t m = 0; m < pool_.size(); ++m) {
    if (!usable[m]) continue;
    FAIREM_ASSIGN_OR_RETURN(
        std::vector<PairOutcome> outcomes,
        MakeOutcomes(selection_split, member_scores[m],
                     dataset.default_threshold));
    double f1 = F1Score(OverallCounts(outcomes)).value_or(0.0);
    if (f1 > best_overall) {
      best_overall = f1;
      default_member_ = m;
    }
  }
  for (const auto& group : membership_->groups()) {
    FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                            membership_->encoding().Encode({group}));
    double best_f1 = -1.0;
    size_t best = default_member_;
    for (size_t m = 0; m < pool_.size(); ++m) {
      if (!usable[m]) continue;
      FAIREM_ASSIGN_OR_RETURN(
          std::vector<PairOutcome> outcomes,
          MakeOutcomes(selection_split, member_scores[m],
                       dataset.default_threshold));
      Result<double> f1 =
          F1Score(SingleGroupCounts(*membership_, outcomes, mask));
      if (f1.ok() && *f1 > best_f1) {
        best_f1 = *f1;
        best = m;
      }
    }
    route_[mask] = best;
    selection_names_[group] = pool_[best]->name();
  }
  fitted_ = true;
  return Status::OK();
}

Result<size_t> PerGroupEnsembleMatcher::RouteFor(size_t left,
                                                 size_t right) const {
  if (!fitted_) {
    return Status::FailedPrecondition("PerGroupEnsemble used before Fit");
  }
  // Route by the left record's group; fall back to the right record, then
  // to the best-overall member.
  for (uint64_t mask : {membership_->LeftMask(left),
                        membership_->RightMask(right)}) {
    for (const auto& [group_mask, member] : route_) {
      if (GroupEncoding::Belongs(mask, group_mask) && group_mask != 0) {
        return member;
      }
    }
  }
  return default_member_;
}

Result<double> PerGroupEnsembleMatcher::ScorePair(const EMDataset& dataset,
                                                  size_t left,
                                                  size_t right) const {
  FAIREM_ASSIGN_OR_RETURN(size_t member, RouteFor(left, right));
  return pool_[member]->ScorePair(dataset, left, right);
}

Result<std::vector<double>> PerGroupEnsembleMatcher::PredictScores(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  // Batch per member so one-to-set members (GNEM) see their full context.
  std::vector<double> scores(pairs.size(), 0.0);
  std::vector<std::vector<size_t>> by_member(pool_.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    FAIREM_ASSIGN_OR_RETURN(size_t member,
                            RouteFor(pairs[i].left, pairs[i].right));
    by_member[member].push_back(i);
  }
  for (size_t m = 0; m < pool_.size(); ++m) {
    if (by_member[m].empty()) continue;
    std::vector<LabeledPair> subset;
    subset.reserve(by_member[m].size());
    for (size_t i : by_member[m]) subset.push_back(pairs[i]);
    FAIREM_ASSIGN_OR_RETURN(std::vector<double> member_scores,
                            pool_[m]->PredictScores(dataset, subset));
    for (size_t k = 0; k < by_member[m].size(); ++k) {
      scores[by_member[m][k]] = member_scores[k];
    }
  }
  return scores;
}

}  // namespace fairem
