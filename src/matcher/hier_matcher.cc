#include "src/matcher/hier_matcher.h"

#include <algorithm>
#include <cmath>

#include "src/matcher/serialize.h"
#include "src/nn/attention.h"

namespace fairem {
namespace {

std::vector<nn::Vec> EmbedAll(const SubwordEmbedding& embedding,
                              const std::vector<std::string>& tokens) {
  std::vector<nn::Vec> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(embedding.Embed(t));
  return out;
}

/// For each token vector in `a`, its best cosine over the token vectors of
/// the *whole other record* (cross-attribute token alignment), weighted by
/// attention logits from `attention` and averaged.
float AlignedAttributeSimilarity(const std::vector<nn::Vec>& a,
                                 const std::vector<nn::Vec>& all_b,
                                 const nn::Vec& attention) {
  if (a.empty() && all_b.empty()) return 1.0f;
  if (a.empty() || all_b.empty()) return 0.0f;
  std::vector<float> weights(a.size());
  std::vector<float> sims(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    float best = -1.0f;
    for (const auto& vb : all_b) best = std::max(best, nn::Cosine(a[i], vb));
    sims[i] = best;
    weights[i] = nn::Dot(a[i], attention);
  }
  nn::SoftmaxInPlace(&weights);
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) acc += weights[i] * sims[i];
  return acc;
}

}  // namespace

HierMatcherMatcher::HierMatcherMatcher() : NeuralMatcherBase() {}

Status HierMatcherMatcher::InitEncoder(const EMDataset& dataset, Rng* rng) {
  attr_attention_.clear();
  for (size_t a = 0; a < dataset.matching_attrs.size(); ++a) {
    nn::Vec v(static_cast<size_t>(embedding().dim()));
    for (float& x : v) x = static_cast<float>(rng->NextGaussian() * 0.5);
    attr_attention_.push_back(std::move(v));
  }
  return Status::OK();
}

Result<std::vector<float>> HierMatcherMatcher::EncodePair(
    const EMDataset& dataset, size_t left, size_t right) const {
  FAIREM_ASSIGN_OR_RETURN(
      auto attrs_a,
      PerAttributeTokens(dataset.table_a, left, dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      auto attrs_b,
      PerAttributeTokens(dataset.table_b, right, dataset.matching_attrs));
  // Embed per attribute and pooled across the record (tokens of every
  // attribute — the cross-attribute alignment pool).
  std::vector<std::vector<nn::Vec>> emb_a(attrs_a.size());
  std::vector<std::vector<nn::Vec>> emb_b(attrs_b.size());
  std::vector<nn::Vec> all_a;
  std::vector<nn::Vec> all_b;
  for (size_t a = 0; a < attrs_a.size(); ++a) {
    emb_a[a] = EmbedAll(embedding(), attrs_a[a]);
    all_a.insert(all_a.end(), emb_a[a].begin(), emb_a[a].end());
    emb_b[a] = EmbedAll(embedding(), attrs_b[a]);
    all_b.insert(all_b.end(), emb_b[a].begin(), emb_b[a].end());
  }
  std::vector<float> features;
  features.reserve(attrs_a.size() * 2 + 2);
  float min_sim = 1.0f;
  float sum_sim = 0.0f;
  for (size_t a = 0; a < attrs_a.size(); ++a) {
    float sim_ab =
        AlignedAttributeSimilarity(emb_a[a], all_b, attr_attention_[a]);
    float sim_ba =
        AlignedAttributeSimilarity(emb_b[a], all_a, attr_attention_[a]);
    features.push_back(sim_ab);
    features.push_back(sim_ba);
    // Frequency-aware within-attribute alignment (trained token attention
    // discounts boilerplate).
    features.push_back(static_cast<float>(
        sentence_encoder().AlignmentSimilarity(attrs_a[a], attrs_b[a])));
    float sym = 0.5f * (sim_ab + sim_ba);
    min_sim = std::min(min_sim, sym);
    sum_sim += sym;
  }
  // Record-level aggregation.
  features.push_back(min_sim);
  features.push_back(attrs_a.empty()
                         ? 0.0f
                         : sum_sim / static_cast<float>(attrs_a.size()));
  return features;
}

}  // namespace fairem
