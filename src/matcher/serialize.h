#ifndef FAIREM_MATCHER_SERIALIZE_H_
#define FAIREM_MATCHER_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/table.h"
#include "src/util/result.h"

namespace fairem {

/// Lower-cased word tokens of one attribute of a record; empty for null
/// cells. Used by the structure-aware neural encoders.
Result<std::vector<std::string>> AttributeTokens(const Table& table,
                                                 size_t row,
                                                 const std::string& attr);

/// DITTO-style serialization of a whole record into one token stream:
/// "[COL] attr [VAL] v1 v2 ... [COL] attr2 ..." over the matching
/// attributes. Structure markers are ordinary tokens, so downstream
/// encoders treat the record as one block of text — deliberately losing
/// the attribute structure (the behaviour §5.3.3 attributes to DITTO).
Result<std::vector<std::string>> SerializeRecord(
    const Table& table, size_t row, const std::vector<std::string>& attrs);

/// Token lists per matching attribute, in `attrs` order.
Result<std::vector<std::vector<std::string>>> PerAttributeTokens(
    const Table& table, size_t row, const std::vector<std::string>& attrs);

}  // namespace fairem

#endif  // FAIREM_MATCHER_SERIALIZE_H_
