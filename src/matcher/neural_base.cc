#include "src/matcher/neural_base.h"

#include "src/matcher/serialize.h"
#include "src/util/thread_pool.h"

namespace fairem {

NeuralMatcherBase::NeuralMatcherBase(nn::MlpOptions head_options)
    : embedding_(SubwordEmbeddingOptions{}), head_(head_options) {}

Status NeuralMatcherBase::Fit(const EMDataset& dataset, Rng* rng) {
  // Fit the SIF frequency weights on the corpus of both tables (the
  // "language model" view of the data).
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(dataset.table_a.num_rows() + dataset.table_b.num_rows());
  for (size_t r = 0; r < dataset.table_a.num_rows(); ++r) {
    FAIREM_ASSIGN_OR_RETURN(
        std::vector<std::string> tokens,
        SerializeRecord(dataset.table_a, r, dataset.matching_attrs));
    corpus.push_back(std::move(tokens));
  }
  for (size_t r = 0; r < dataset.table_b.num_rows(); ++r) {
    FAIREM_ASSIGN_OR_RETURN(
        std::vector<std::string> tokens,
        SerializeRecord(dataset.table_b, r, dataset.matching_attrs));
    corpus.push_back(std::move(tokens));
  }
  sentence_encoder_ = std::make_unique<SentenceEncoder>(&embedding_);
  sentence_encoder_->FitFrequencies(corpus);

  FAIREM_RETURN_NOT_OK(InitEncoder(dataset, rng));

  std::vector<std::vector<float>> x;
  std::vector<int> y;
  x.reserve(dataset.train.size());
  y.reserve(dataset.train.size());
  for (const auto& pair : dataset.train) {
    FAIREM_ASSIGN_OR_RETURN(
        std::vector<float> features,
        EncodePairForTraining(dataset, pair.left, pair.right, rng));
    x.push_back(std::move(features));
    y.push_back(pair.is_match ? 1 : 0);
  }
  if (x.empty()) {
    return Status::InvalidArgument("neural matcher '" + name() +
                                   "': empty training split");
  }
  FAIREM_RETURN_NOT_OK(head_.Fit(x, y, rng));
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<float>> NeuralMatcherBase::EncodePairForTraining(
    const EMDataset& dataset, size_t left, size_t right, Rng* /*rng*/) const {
  return EncodePair(dataset, left, right);
}

Result<double> NeuralMatcherBase::ScorePair(const EMDataset& dataset,
                                            size_t left, size_t right) const {
  if (!fitted_) {
    return Status::FailedPrecondition("neural matcher '" + name() +
                                      "' used before Fit");
  }
  FAIREM_ASSIGN_OR_RETURN(std::vector<float> features,
                          EncodePair(dataset, left, right));
  return head_.Predict(features);
}

Result<std::vector<double>> NeuralMatcherBase::PredictScores(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  if (!fitted_) {
    return Status::FailedPrecondition("neural matcher '" + name() +
                                      "' used before Fit");
  }
  std::vector<double> scores(pairs.size(), 0.0);
  FAIREM_RETURN_NOT_OK(ParallelForChunks(
      pairs.size(), /*grain=*/0, [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          FAIREM_ASSIGN_OR_RETURN(
              std::vector<float> features,
              EncodePair(dataset, pairs[i].left, pairs[i].right));
          scores[i] = head_.Predict(features);
        }
        return Status::OK();
      }));
  return scores;
}

}  // namespace fairem
