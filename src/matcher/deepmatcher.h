#ifndef FAIREM_MATCHER_DEEPMATCHER_H_
#define FAIREM_MATCHER_DEEPMATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/matcher/neural_base.h"
#include "src/nn/gru.h"

namespace fairem {

/// The hybrid (RNN + attention) DeepMatcher model of Table 3 [43]: for each
/// matching attribute, both value token sequences are embedded, summarized
/// by a shared frozen GRU, and soft-aligned with decomposable attention;
/// the per-attribute comparison features (GRU-summary cosine, alignment
/// similarity, bag-of-embeddings cosine) feed the trainable head. Attribute
/// structure is preserved — the trait that makes DeepMatcher-style models
/// competitive on structured data.
class DeepMatcherMatcher : public NeuralMatcherBase {
 public:
  DeepMatcherMatcher();

  std::string name() const override { return "DeepMatcher"; }

 protected:
  Status InitEncoder(const EMDataset& dataset, Rng* rng) override;
  Result<std::vector<float>> EncodePair(const EMDataset& dataset, size_t left,
                                        size_t right) const override;

 private:
  static constexpr int kHiddenDim = 24;
  std::unique_ptr<nn::GruCell> gru_;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_DEEPMATCHER_H_
