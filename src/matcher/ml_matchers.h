#ifndef FAIREM_MATCHER_ML_MATCHERS_H_
#define FAIREM_MATCHER_ML_MATCHERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/feature/feature_gen.h"
#include "src/matcher/matcher.h"
#include "src/ml/classifier.h"

namespace fairem {

/// The Magellan-style non-neural matchers (Table 3): automatic feature
/// generation over the matching attributes, then a traditional classifier.
/// One class parameterized by the classifier covers DTMatcher, SVMMatcher,
/// RFMatcher, LogRegMatcher, LinRegMatcher, and NBMatcher.
class FeatureClassifierMatcher : public Matcher {
 public:
  /// `display_name` follows Table 3 (e.g. "DTMatcher").
  FeatureClassifierMatcher(std::string display_name,
                           std::unique_ptr<Classifier> classifier)
      : display_name_(std::move(display_name)),
        classifier_(std::move(classifier)) {}

  std::string name() const override { return display_name_; }
  MatcherFamily family() const override { return MatcherFamily::kNonNeural; }

  Status Fit(const EMDataset& dataset, Rng* rng) override;
  Result<double> ScorePair(const EMDataset& dataset, size_t left,
                           size_t right) const override;

  /// Batch path: one BuildFeatureTable over all pairs (prepared-text cache,
  /// parallel row chunks) plus a batched classifier predict, instead of
  /// re-extracting features pair by pair. Byte-identical scores in the same
  /// order as the default loop.
  Result<std::vector<double>> PredictScores(
      const EMDataset& dataset,
      const std::vector<LabeledPair>& pairs) const override;

  /// The generated feature definitions (after Fit). Exposed so audits can
  /// report which attributes the model leans on.
  const std::vector<FeatureDef>& features() const { return features_; }
  const Classifier& classifier() const { return *classifier_; }

 private:
  std::string display_name_;
  std::unique_ptr<Classifier> classifier_;
  std::vector<FeatureDef> features_;
  bool fitted_ = false;
};

/// Factory helpers with the paper-default hyper-parameters.
std::unique_ptr<Matcher> MakeDTMatcher();
std::unique_ptr<Matcher> MakeSvmMatcher();
std::unique_ptr<Matcher> MakeRFMatcher();
std::unique_ptr<Matcher> MakeLogRegMatcher();
std::unique_ptr<Matcher> MakeLinRegMatcher();
std::unique_ptr<Matcher> MakeNBMatcher();

}  // namespace fairem

#endif  // FAIREM_MATCHER_ML_MATCHERS_H_
