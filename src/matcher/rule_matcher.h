#ifndef FAIREM_MATCHER_RULE_MATCHER_H_
#define FAIREM_MATCHER_RULE_MATCHER_H_

#include <string>
#include <vector>

#include "src/feature/feature_gen.h"
#include "src/matcher/matcher.h"
#include "src/text/similarity.h"

namespace fairem {

/// One matching condition: similarity(measure, a.attr, b.attr) >= threshold
/// (§4.1: a similarity measure, a comparison operator, and a threshold).
struct RulePredicate {
  std::string attr;
  SimilarityMeasure measure = SimilarityMeasure::kExactMatch;
  double threshold = 0.5;
};

/// Declarative conjunction-of-predicates matcher (BooleanRuleMatcher of
/// Table 3). If no predicates are supplied, Fit derives them automatically
/// following the paper's protocol (§5.1.4): exact match on short atomic
/// attributes, a token-similarity predicate with threshold 0.5 on longer
/// ones, numeric closeness on numeric attributes.
///
/// The confidence score of a pair is the minimum predicate score, where a
/// threshold predicate scores its raw similarity and an exact predicate
/// scores 1.0 on equality and half the Levenshtein similarity otherwise
/// (so it stays below 0.5 and the conjunction semantics survive
/// thresholding at the paper's default 0.5).
class BooleanRuleMatcher : public Matcher {
 public:
  BooleanRuleMatcher() = default;
  explicit BooleanRuleMatcher(std::vector<RulePredicate> predicates)
      : predicates_(std::move(predicates)), user_rules_(true) {}

  std::string name() const override { return "BooleanRuleMatcher"; }
  MatcherFamily family() const override { return MatcherFamily::kRuleBased; }

  Status Fit(const EMDataset& dataset, Rng* rng) override;
  Result<double> ScorePair(const EMDataset& dataset, size_t left,
                           size_t right) const override;

  const std::vector<RulePredicate>& predicates() const { return predicates_; }

 private:
  std::vector<RulePredicate> predicates_;
  bool user_rules_ = false;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_RULE_MATCHER_H_
