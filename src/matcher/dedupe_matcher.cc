#include "src/matcher/dedupe_matcher.h"

#include <algorithm>
#include <numeric>

namespace fairem {
namespace {

/// Union-find over record nodes of both tables (A-rows then B-rows).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

bool DedupeMatcher::SupportsDataset(const EMDataset& dataset) const {
  if (dataset.table_a.num_rows() > kMaxRows ||
      dataset.table_b.num_rows() > kMaxRows) {
    return false;
  }
  // Scale of the real task this benchmark simulates (Table 4): Dedupe
  // "did not scale" for the two social datasets in the paper.
  if (dataset.simulated_full_scale_pairs > kMaxFullScalePairs) return false;
  // Single long-text attribute (the WDC textual datasets): Dedupe's
  // field-wise distance model has nothing to work with.
  if (dataset.matching_attrs.size() == 1) {
    Result<AttrType> type = InferAttrType(dataset.table_a, dataset.table_b,
                                          dataset.matching_attrs[0]);
    if (type.ok() && *type == AttrType::kLongString) return false;
  }
  return true;
}

Status DedupeMatcher::Fit(const EMDataset& dataset, Rng* rng) {
  if (!SupportsDataset(dataset)) {
    return Status::FailedPrecondition("Dedupe did not scale for dataset '" +
                                      dataset.name + "'");
  }
  FAIREM_ASSIGN_OR_RETURN(
      features_, GenerateFeatures(dataset.table_a, dataset.table_b,
                                  dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      FeatureTable table,
      BuildFeatureTable(features_, dataset.table_a, dataset.table_b,
                        dataset.train));
  FAIREM_RETURN_NOT_OK(regression_.Fit(table.rows, table.labels, rng));
  fitted_ = true;
  return Status::OK();
}

Result<double> DedupeMatcher::ScorePair(const EMDataset& dataset, size_t left,
                                        size_t right) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Dedupe used before Fit");
  }
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<double> x,
      ExtractFeatures(features_, dataset.table_a, dataset.table_b, left,
                      right));
  return regression_.PredictScore(x);
}

Result<std::vector<double>> DedupeMatcher::PredictScores(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  std::vector<double> scores(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    FAIREM_ASSIGN_OR_RETURN(scores[i],
                            ScorePair(dataset, pairs[i].left, pairs[i].right));
  }
  // Agglomerative pass: link every pair whose raw score clears the linkage
  // threshold, then lift the scores of same-cluster pairs to the cluster's
  // minimum linking score (single-linkage transitive closure).
  const size_t offset = dataset.table_a.num_rows();
  UnionFind uf(offset + dataset.table_b.num_rows());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i] >= cluster_threshold_) {
      uf.Union(pairs[i].left, offset + pairs[i].right);
    }
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i] < cluster_threshold_ &&
        uf.Find(pairs[i].left) == uf.Find(offset + pairs[i].right)) {
      scores[i] = std::max(scores[i], cluster_threshold_);
    }
  }
  return scores;
}

}  // namespace fairem
