#ifndef FAIREM_MATCHER_DEDUPE_MATCHER_H_
#define FAIREM_MATCHER_DEDUPE_MATCHER_H_

#include <string>
#include <vector>

#include "src/feature/feature_gen.h"
#include "src/matcher/matcher.h"
#include "src/ml/linear_models.h"

namespace fairem {

/// Model of Dedupe [28]: a regularized logistic regression over distance
/// features followed by agglomerative hierarchical clustering of records;
/// pairs landing in the same cluster get their scores lifted to at least
/// the cluster linkage score (transitive closure smoothing).
///
/// Mirroring the paper's protocol (§5.1.4): active labelling is bypassed by
/// training on the full labelled train split, and the matcher "does not
/// scale" to datasets past a size cutoff or with a single textual attribute
/// (FacultyMatch, NoFlyCompas, Shoes, Cameras) — SupportsDataset returns
/// false there and benches print "-".
class DedupeMatcher : public Matcher {
 public:
  DedupeMatcher() : regression_(LinearOptions{.l2 = 1e-2}) {}

  std::string name() const override { return "Dedupe"; }
  MatcherFamily family() const override { return MatcherFamily::kNonNeural; }

  Status Fit(const EMDataset& dataset, Rng* rng) override;
  Result<double> ScorePair(const EMDataset& dataset, size_t left,
                           size_t right) const override;
  Result<std::vector<double>> PredictScores(
      const EMDataset& dataset,
      const std::vector<LabeledPair>& pairs) const override;
  bool SupportsDataset(const EMDataset& dataset) const override;

  /// Rows-per-table threshold above which the matcher declares itself
  /// unscalable.
  static constexpr size_t kMaxRows = 5000;

  /// Full-scale labelled-pair threshold (per EMDataset's
  /// simulated_full_scale_pairs) above which the matcher declares itself
  /// unscalable, mirroring the paper's protocol.
  static constexpr size_t kMaxFullScalePairs = 50000;

 private:
  LogisticRegression regression_;
  std::vector<FeatureDef> features_;
  /// Agglomerative linkage threshold for the clustering pass.
  double cluster_threshold_ = 0.5;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_DEDUPE_MATCHER_H_
