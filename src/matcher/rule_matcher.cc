#include "src/matcher/rule_matcher.h"

#include <algorithm>
#include <set>

#include "src/text/edit_distance.h"

namespace fairem {

namespace {

/// Fraction of distinct (case-folded) non-null values over both tables;
/// low ratios indicate a categorical attribute (venue, year, race) where an
/// exact-match predicate is appropriate.
Result<double> DistinctRatio(const Table& a, const Table& b,
                             const std::string& attr) {
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr));
  std::set<std::string> distinct;
  size_t total = 0;
  for (const auto* t : {&a, &b}) {
    size_t col = (t == &a) ? col_a : col_b;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      if (t->IsNull(r, col)) continue;
      distinct.insert(std::string(t->value(r, col)));
      ++total;
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(distinct.size()) / static_cast<double>(total);
}

}  // namespace

Status BooleanRuleMatcher::Fit(const EMDataset& dataset, Rng* /*rng*/) {
  if (!user_rules_) {
    predicates_.clear();
    for (const auto& attr : dataset.matching_attrs) {
      FAIREM_ASSIGN_OR_RETURN(
          AttrType type, InferAttrType(dataset.table_a, dataset.table_b, attr));
      switch (type) {
        case AttrType::kNumeric:
          predicates_.push_back({attr, SimilarityMeasure::kNumericAbsDiff, 0.9});
          break;
        case AttrType::kShortString: {
          // Exact match suits categorical short attributes (year, venue);
          // free-text short attributes (names) get a character-distance
          // predicate at the paper's 0.5 threshold.
          FAIREM_ASSIGN_OR_RETURN(
              double ratio,
              DistinctRatio(dataset.table_a, dataset.table_b, attr));
          if (ratio < 0.3) {
            predicates_.push_back({attr, SimilarityMeasure::kExactMatch, 1.0});
          } else {
            predicates_.push_back(
                {attr, SimilarityMeasure::kLevenshtein, 0.5});
          }
          break;
        }
        case AttrType::kLongString:
          predicates_.push_back({attr, SimilarityMeasure::kCosineWord, 0.5});
          break;
      }
    }
  }
  if (predicates_.empty()) {
    return Status::InvalidArgument("rule matcher has no predicates");
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> BooleanRuleMatcher::ScorePair(const EMDataset& dataset,
                                             size_t left, size_t right) const {
  if (!fitted_) {
    return Status::FailedPrecondition("BooleanRuleMatcher used before Fit");
  }
  double score = 1.0;
  for (const auto& pred : predicates_) {
    FAIREM_ASSIGN_OR_RETURN(size_t col_a,
                            dataset.table_a.schema().Index(pred.attr));
    FAIREM_ASSIGN_OR_RETURN(size_t col_b,
                            dataset.table_b.schema().Index(pred.attr));
    const bool null_a = dataset.table_a.IsNull(left, col_a);
    const bool null_b = dataset.table_b.IsNull(right, col_b);
    double pred_score = 0.0;
    if (!null_a && !null_b) {
      std::string_view va = dataset.table_a.value(left, col_a);
      std::string_view vb = dataset.table_b.value(right, col_b);
      if (pred.measure == SimilarityMeasure::kExactMatch) {
        pred_score = (va == vb) ? 1.0 : 0.5 * LevenshteinSimilarity(va, vb);
      } else {
        pred_score = ComputeSimilarity(pred.measure, va, vb);
      }
    }
    score = std::min(score, pred_score);
  }
  return score;
}

}  // namespace fairem
