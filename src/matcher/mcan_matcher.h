#ifndef FAIREM_MATCHER_MCAN_MATCHER_H_
#define FAIREM_MATCHER_MCAN_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/matcher/neural_base.h"
#include "src/nn/gru.h"
#include "src/nn/vecops.h"

namespace fairem {

/// The MCAN model of Table 3 [67]: RNN encoding with multi-context
/// attention — self-attention (within an attribute), pair-attention
/// (across the two records' attribute values), global-attention (over the
/// whole record), combined through a gating mechanism that mixes the
/// contexts per attribute.
class McanMatcher : public NeuralMatcherBase {
 public:
  McanMatcher();

  std::string name() const override { return "MCAN"; }

 protected:
  Status InitEncoder(const EMDataset& dataset, Rng* rng) override;
  Result<std::vector<float>> EncodePair(const EMDataset& dataset, size_t left,
                                        size_t right) const override;

 private:
  static constexpr int kHiddenDim = 20;
  std::unique_ptr<nn::GruCell> gru_;
  /// Frozen gating direction: mixes self/pair/global context similarities.
  nn::Vec gate_;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_MCAN_MATCHER_H_
