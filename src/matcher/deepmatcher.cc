#include "src/matcher/deepmatcher.h"

#include "src/matcher/serialize.h"
#include "src/nn/attention.h"
#include "src/nn/vecops.h"

namespace fairem {
namespace {

std::vector<nn::Vec> EmbedTokens(const SubwordEmbedding& embedding,
                                 const std::vector<std::string>& tokens) {
  std::vector<nn::Vec> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(embedding.Embed(t));
  return out;
}

}  // namespace

DeepMatcherMatcher::DeepMatcherMatcher() : NeuralMatcherBase() {}

Status DeepMatcherMatcher::InitEncoder(const EMDataset& /*dataset*/,
                                       Rng* rng) {
  gru_ = std::make_unique<nn::GruCell>(embedding().dim(), kHiddenDim, rng);
  return Status::OK();
}

Result<std::vector<float>> DeepMatcherMatcher::EncodePair(
    const EMDataset& dataset, size_t left, size_t right) const {
  FAIREM_ASSIGN_OR_RETURN(
      auto attrs_a,
      PerAttributeTokens(dataset.table_a, left, dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      auto attrs_b,
      PerAttributeTokens(dataset.table_b, right, dataset.matching_attrs));
  std::vector<float> features;
  features.reserve(attrs_a.size() * 3);
  const size_t dim = static_cast<size_t>(embedding().dim());
  for (size_t a = 0; a < attrs_a.size(); ++a) {
    std::vector<nn::Vec> emb_a = EmbedTokens(embedding(), attrs_a[a]);
    std::vector<nn::Vec> emb_b = EmbedTokens(embedding(), attrs_b[a]);
    // (1) Recurrent summaries.
    nn::Vec rnn_a = gru_->RunMean(emb_a);
    nn::Vec rnn_b = gru_->RunMean(emb_b);
    features.push_back(nn::Cosine(rnn_a, rnn_b));
    // (2) Decomposable attention alignment.
    features.push_back(nn::AlignmentSimilarity(emb_a, emb_b));
    // (3) Bag-of-embeddings comparison.
    features.push_back(
        nn::Cosine(nn::Mean(emb_a, dim), nn::Mean(emb_b, dim)));
    // (4) Frequency-aware token alignment (the trained attention of the
    // real model discounts boilerplate tokens).
    features.push_back(static_cast<float>(
        sentence_encoder().AlignmentSimilarity(attrs_a[a], attrs_b[a])));
  }
  return features;
}

}  // namespace fairem
