#ifndef FAIREM_MATCHER_MATCHER_H_
#define FAIREM_MATCHER_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {

/// The three families of Table 3.
enum class MatcherFamily { kRuleBased, kNonNeural, kNeural };

const char* MatcherFamilyName(MatcherFamily family);

/// An end-to-end entity matcher. Matchers train on a dataset's train split
/// using only `matching_attrs` and emit confidence scores in [0, 1] for
/// record pairs; thresholding into match/non-match decisions is external
/// (§3.1).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Display name following Table 3, e.g. "DTMatcher".
  virtual std::string name() const = 0;
  virtual MatcherFamily family() const = 0;

  /// Trains on `dataset.train` (and may tune on `dataset.valid`).
  virtual Status Fit(const EMDataset& dataset, Rng* rng) = 0;

  /// Confidence for one pair of rows (left in table_a, right in table_b).
  virtual Result<double> ScorePair(const EMDataset& dataset, size_t left,
                                   size_t right) const = 0;

  /// Batch scoring. The default loops over ScorePair; one-to-set matchers
  /// (GNEM) override this to exploit the whole candidate set.
  virtual Result<std::vector<double>> PredictScores(
      const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const;

  /// False for matchers that cannot handle a dataset (mirrors Dedupe's
  /// failure to scale to the largest / textual datasets in the paper,
  /// §5.1.4); benches print "-" for those cells.
  virtual bool SupportsDataset(const EMDataset& dataset) const;
};

/// The 13 systems of Table 3.
enum class MatcherKind {
  kBooleanRule,
  kDedupe,
  kDT,
  kSvm,
  kRF,
  kLogReg,
  kLinReg,
  kNB,
  kDeepMatcher,
  kDitto,
  kGnem,
  kHierMatcher,
  kMcan,
};

/// Table 3 display name ("BooleanRuleMatcher", "Ditto", ...).
const char* MatcherKindName(MatcherKind kind);

MatcherFamily FamilyOf(MatcherKind kind);

/// Instantiates a matcher with its paper-default configuration.
std::unique_ptr<Matcher> CreateMatcher(MatcherKind kind);

/// All 13 kinds in Table 3 order.
std::vector<MatcherKind> AllMatcherKinds();

/// The neural subset (Table 5 order).
std::vector<MatcherKind> NeuralMatcherKinds();

/// The non-neural ML subset.
std::vector<MatcherKind> NonNeuralMatcherKinds();

}  // namespace fairem

#endif  // FAIREM_MATCHER_MATCHER_H_
