#include "src/matcher/gnem_matcher.h"

#include <unordered_map>

#include "src/matcher/serialize.h"
#include "src/nn/attention.h"
#include "src/nn/vecops.h"

namespace fairem {
namespace {

uint64_t PairKey(size_t left, size_t right) {
  return (static_cast<uint64_t>(left) << 32) | static_cast<uint64_t>(right);
}

}  // namespace

GnemMatcher::GnemMatcher() : NeuralMatcherBase() {}

Result<std::vector<float>> GnemMatcher::NodeFeatures(const EMDataset& dataset,
                                                     size_t left,
                                                     size_t right) const {
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<std::string> tokens_a,
      SerializeRecord(dataset.table_a, left, dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<std::string> tokens_b,
      SerializeRecord(dataset.table_b, right, dataset.matching_attrs));
  nn::Vec sent_a = sentence_encoder().Encode(tokens_a);
  nn::Vec sent_b = sentence_encoder().Encode(tokens_b);
  std::vector<float> f;
  f.push_back(nn::Cosine(sent_a, sent_b));
  f.push_back(1.0f - nn::MeanAbsDiff(sent_a, sent_b));
  f.push_back(static_cast<float>(
      sentence_encoder().AlignmentSimilarity(tokens_a, tokens_b)));
  return f;
}

Result<std::vector<std::vector<float>>> GnemMatcher::ConvolvedFeatures(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  std::vector<std::vector<float>> node(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    FAIREM_ASSIGN_OR_RETURN(node[i],
                            NodeFeatures(dataset, pairs[i].left,
                                         pairs[i].right));
  }
  // Adjacency via shared records: bucket node ids by left and right record.
  std::unordered_map<size_t, std::vector<size_t>> by_left;
  std::unordered_map<size_t, std::vector<size_t>> by_right;
  for (size_t i = 0; i < pairs.size(); ++i) {
    by_left[pairs[i].left].push_back(i);
    by_right[pairs[i].right].push_back(i);
  }
  const size_t fdim = node.empty() ? 0 : node[0].size();
  std::vector<std::vector<float>> out(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    // Mean over neighbours (pairs sharing the left or the right record,
    // including self — standard GCN self-loop).
    std::vector<float> mean(fdim, 0.0f);
    size_t count = 0;
    for (const auto* bucket :
         {&by_left[pairs[i].left], &by_right[pairs[i].right]}) {
      for (size_t j : *bucket) {
        for (size_t d = 0; d < fdim; ++d) mean[d] += node[j][d];
        ++count;
      }
    }
    if (count > 0) {
      for (float& v : mean) v /= static_cast<float>(count);
    }
    out[i] = node[i];
    out[i].insert(out[i].end(), mean.begin(), mean.end());
  }
  return out;
}

Status GnemMatcher::InitEncoder(const EMDataset& dataset, Rng* /*rng*/) {
  // Pre-compute the one-to-set (graph-convolved) training features so the
  // head trains under the same semantics it will predict with.
  FAIREM_ASSIGN_OR_RETURN(train_features_,
                          ConvolvedFeatures(dataset, dataset.train));
  train_index_.clear();
  for (size_t i = 0; i < dataset.train.size(); ++i) {
    train_index_.emplace(
        PairKey(dataset.train[i].left, dataset.train[i].right), i);
  }
  train_cache_ready_ = true;
  return Status::OK();
}

Result<std::vector<float>> GnemMatcher::EncodePairForTraining(
    const EMDataset& dataset, size_t left, size_t right, Rng* /*rng*/) const {
  if (train_cache_ready_) {
    auto it = train_index_.find(PairKey(left, right));
    if (it != train_index_.end()) return train_features_[it->second];
  }
  return EncodePair(dataset, left, right);
}

Result<std::vector<float>> GnemMatcher::EncodePair(const EMDataset& dataset,
                                                   size_t left,
                                                   size_t right) const {
  // Isolated pair: self-loop-only neighbourhood (the node is its own set).
  FAIREM_ASSIGN_OR_RETURN(std::vector<float> f,
                          NodeFeatures(dataset, left, right));
  std::vector<float> out = f;
  out.insert(out.end(), f.begin(), f.end());
  return out;
}

Result<std::vector<double>> GnemMatcher::PredictScores(
    const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const {
  if (!head().fitted()) {
    return Status::FailedPrecondition("GNEM used before Fit");
  }
  FAIREM_ASSIGN_OR_RETURN(std::vector<std::vector<float>> features,
                          ConvolvedFeatures(dataset, pairs));
  std::vector<double> scores(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    scores[i] = head().Predict(features[i]);
  }
  return scores;
}

}  // namespace fairem
