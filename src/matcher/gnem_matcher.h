#ifndef FAIREM_MATCHER_GNEM_MATCHER_H_
#define FAIREM_MATCHER_GNEM_MATCHER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/matcher/neural_base.h"

namespace fairem {

/// The GNEM model of Table 3 [18]: the only one-to-set matcher. Candidate
/// pairs are nodes of a graph; pairs sharing a record are neighbours. Each
/// node carries a sequence-level comparison vector; one graph-convolution
/// round averages neighbour features, and the head classifies
/// [own features ‖ neighbourhood mean]. PredictScores exploits the whole
/// candidate set (the one-to-set view); scoring a single pair in isolation
/// degenerates to an empty neighbourhood.
class GnemMatcher : public NeuralMatcherBase {
 public:
  GnemMatcher();

  std::string name() const override { return "GNEM"; }

  Result<std::vector<double>> PredictScores(
      const EMDataset& dataset,
      const std::vector<LabeledPair>& pairs) const override;

 protected:
  Status InitEncoder(const EMDataset& dataset, Rng* rng) override;
  Result<std::vector<float>> EncodePair(const EMDataset& dataset, size_t left,
                                        size_t right) const override;
  Result<std::vector<float>> EncodePairForTraining(const EMDataset& dataset,
                                                   size_t left, size_t right,
                                                   Rng* rng) const override;

 private:
  /// Node features before graph convolution.
  Result<std::vector<float>> NodeFeatures(const EMDataset& dataset,
                                          size_t left, size_t right) const;

  /// Builds graph-convolved features for a batch of pairs.
  Result<std::vector<std::vector<float>>> ConvolvedFeatures(
      const EMDataset& dataset, const std::vector<LabeledPair>& pairs) const;

  /// Neighbourhood means of the training pairs, cached during Fit so
  /// training matches the one-to-set semantics.
  std::vector<std::vector<float>> train_features_;
  std::unordered_map<uint64_t, size_t> train_index_;
  bool train_cache_ready_ = false;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_GNEM_MATCHER_H_
