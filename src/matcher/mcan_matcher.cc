#include "src/matcher/mcan_matcher.h"

#include <cmath>

#include "src/matcher/serialize.h"
#include "src/nn/attention.h"

namespace fairem {
namespace {

std::vector<nn::Vec> EmbedAll(const SubwordEmbedding& embedding,
                              const std::vector<std::string>& tokens) {
  std::vector<nn::Vec> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(embedding.Embed(t));
  return out;
}

float SigmoidF(float z) { return 1.0f / (1.0f + std::exp(-z)); }

}  // namespace

McanMatcher::McanMatcher() : NeuralMatcherBase() {}

Status McanMatcher::InitEncoder(const EMDataset& /*dataset*/, Rng* rng) {
  gru_ = std::make_unique<nn::GruCell>(embedding().dim(), kHiddenDim, rng);
  gate_.assign(3, 0.0f);
  for (float& g : gate_) g = static_cast<float>(rng->NextGaussian());
  return Status::OK();
}

Result<std::vector<float>> McanMatcher::EncodePair(const EMDataset& dataset,
                                                   size_t left,
                                                   size_t right) const {
  FAIREM_ASSIGN_OR_RETURN(
      auto attrs_a,
      PerAttributeTokens(dataset.table_a, left, dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      auto attrs_b,
      PerAttributeTokens(dataset.table_b, right, dataset.matching_attrs));
  const size_t dim = static_cast<size_t>(embedding().dim());

  // Global context: GRU summary of the full serialized records.
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<std::string> full_a,
      SerializeRecord(dataset.table_a, left, dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<std::string> full_b,
      SerializeRecord(dataset.table_b, right, dataset.matching_attrs));
  nn::Vec global_a = gru_->RunMean(EmbedAll(embedding(), full_a));
  nn::Vec global_b = gru_->RunMean(EmbedAll(embedding(), full_b));
  float global_sim = nn::Cosine(global_a, global_b);

  std::vector<float> features;
  features.reserve(attrs_a.size() * 2 + 1);
  for (size_t a = 0; a < attrs_a.size(); ++a) {
    std::vector<nn::Vec> emb_a = EmbedAll(embedding(), attrs_a[a]);
    std::vector<nn::Vec> emb_b = EmbedAll(embedding(), attrs_b[a]);
    // Self-attention context.
    nn::Vec self_a = nn::SelfAttentionPool(emb_a, dim);
    nn::Vec self_b = nn::SelfAttentionPool(emb_b, dim);
    float self_sim = nn::Cosine(self_a, self_b);
    // Pair-attention context: read each side with the other's summary.
    nn::Vec pair_a = nn::Attend(self_b, emb_a);
    nn::Vec pair_b = nn::Attend(self_a, emb_b);
    float pair_sim = nn::Cosine(pair_a, pair_b);
    // Gating mechanism: per-attribute mixture of the three contexts.
    float gate = SigmoidF(gate_[0] * self_sim + gate_[1] * pair_sim +
                          gate_[2] * global_sim);
    float mixed = gate * self_sim + (1.0f - gate) * pair_sim;
    features.push_back(mixed);
    features.push_back(pair_sim);
    // Frequency-aware token alignment context.
    features.push_back(static_cast<float>(
        sentence_encoder().AlignmentSimilarity(attrs_a[a], attrs_b[a])));
  }
  features.push_back(global_sim);
  return features;
}

}  // namespace fairem
