#include "src/matcher/ditto_matcher.h"

#include <algorithm>

#include "src/matcher/serialize.h"
#include "src/nn/attention.h"
#include "src/nn/vecops.h"
#include "src/text/token_sim.h"

namespace fairem {

DittoMatcher::DittoMatcher() : NeuralMatcherBase() {}

Status DittoMatcher::InitEncoder(const EMDataset& /*dataset*/, Rng* /*rng*/) {
  // DITTO's encoder is entirely the frozen language model; nothing to do.
  return Status::OK();
}

Result<std::vector<float>> DittoMatcher::Encode(const EMDataset& dataset,
                                                size_t left, size_t right,
                                                Rng* augment_rng) const {
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<std::string> tokens_a,
      SerializeRecord(dataset.table_a, left, dataset.matching_attrs));
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<std::string> tokens_b,
      SerializeRecord(dataset.table_b, right, dataset.matching_attrs));
  // Sequence summarization: truncate long streams.
  if (tokens_a.size() > kMaxTokens) tokens_a.resize(kMaxTokens);
  if (tokens_b.size() > kMaxTokens) tokens_b.resize(kMaxTokens);
  // Data augmentation: random token dropout during training.
  if (augment_rng != nullptr) {
    auto drop = [&](std::vector<std::string>* tokens) {
      std::vector<std::string> kept;
      kept.reserve(tokens->size());
      for (auto& t : *tokens) {
        if (!augment_rng->NextBool(kDropout)) kept.push_back(std::move(t));
      }
      if (!kept.empty()) *tokens = std::move(kept);
    };
    drop(&tokens_a);
    drop(&tokens_b);
  }
  const size_t dim = static_cast<size_t>(embedding().dim());
  nn::Vec sent_a = sentence_encoder().Encode(tokens_a);
  nn::Vec sent_b = sentence_encoder().Encode(tokens_b);
  std::vector<nn::Vec> emb_a;
  std::vector<nn::Vec> emb_b;
  emb_a.reserve(tokens_a.size());
  for (const auto& t : tokens_a) emb_a.push_back(embedding().Embed(t));
  emb_b.reserve(tokens_b.size());
  for (const auto& t : tokens_b) emb_b.push_back(embedding().Embed(t));
  nn::Vec pooled_a = nn::SelfAttentionPool(emb_a, dim);
  nn::Vec pooled_b = nn::SelfAttentionPool(emb_b, dim);
  std::vector<float> features;
  features.push_back(nn::Cosine(sent_a, sent_b));
  features.push_back(nn::Cosine(pooled_a, pooled_b));
  features.push_back(1.0f - nn::MeanAbsDiff(sent_a, sent_b));
  features.push_back(
      static_cast<float>(JaccardSimilarity(tokens_a, tokens_b)));
  // Token-level cross attention over the serialized streams (still
  // structure-blind: alignment freely crosses attribute boundaries).
  features.push_back(static_cast<float>(
      sentence_encoder().AlignmentSimilarity(tokens_a, tokens_b)));
  return features;
}

Result<std::vector<float>> DittoMatcher::EncodePair(const EMDataset& dataset,
                                                    size_t left,
                                                    size_t right) const {
  return Encode(dataset, left, right, nullptr);
}

Result<std::vector<float>> DittoMatcher::EncodePairForTraining(
    const EMDataset& dataset, size_t left, size_t right, Rng* rng) const {
  return Encode(dataset, left, right, rng);
}

}  // namespace fairem
