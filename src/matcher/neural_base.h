#ifndef FAIREM_MATCHER_NEURAL_BASE_H_
#define FAIREM_MATCHER_NEURAL_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/embed/sentence_encoder.h"
#include "src/embed/subword_embedding.h"
#include "src/matcher/matcher.h"
#include "src/nn/mlp.h"

namespace fairem {

/// Common scaffolding of the five neural matchers: a shared "pre-trained"
/// subword embedding (fixed seed — the same public embedding for everyone,
/// as in the paper's use of fastText), an architecture-specific frozen
/// encoder producing a pair-comparison vector, and a trainable MLP head
/// (Adam + BCE). Subclasses implement InitEncoder and EncodePair.
class NeuralMatcherBase : public Matcher {
 public:
  MatcherFamily family() const override { return MatcherFamily::kNeural; }

  Status Fit(const EMDataset& dataset, Rng* rng) override;
  Result<double> ScorePair(const EMDataset& dataset, size_t left,
                           size_t right) const override;

  /// Batch path: EncodePair + head forward per pair, chunked over the
  /// intra-cell pool. Encoders and the head are frozen after Fit, so pairs
  /// are independent and the output is byte-identical to the sequential
  /// loop in pair order. One-to-set matchers (GNEM) override this again.
  Result<std::vector<double>> PredictScores(
      const EMDataset& dataset,
      const std::vector<LabeledPair>& pairs) const override;

 protected:
  explicit NeuralMatcherBase(nn::MlpOptions head_options = {});

  /// Builds architecture-specific frozen components (GRUs, attention
  /// parameters) for this dataset. Called once at the start of Fit.
  virtual Status InitEncoder(const EMDataset& dataset, Rng* rng) = 0;

  /// The architecture: encodes the pair into the head's input vector.
  virtual Result<std::vector<float>> EncodePair(const EMDataset& dataset,
                                                size_t left,
                                                size_t right) const = 0;

  /// Training-time encoding; default delegates to EncodePair. Matchers with
  /// data augmentation (DITTO) override to perturb the encoding.
  virtual Result<std::vector<float>> EncodePairForTraining(
      const EMDataset& dataset, size_t left, size_t right, Rng* rng) const;

  /// The shared pre-trained embedding (fixed seed 42).
  const SubwordEmbedding& embedding() const { return embedding_; }

  /// SIF sentence encoder; frequencies fit on both tables during Fit.
  const SentenceEncoder& sentence_encoder() const { return *sentence_encoder_; }

  const nn::Mlp& head() const { return head_; }

 private:
  SubwordEmbedding embedding_;
  std::unique_ptr<SentenceEncoder> sentence_encoder_;
  nn::Mlp head_;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_MATCHER_NEURAL_BASE_H_
