#include "src/robust/circuit_breaker.h"

namespace fairem {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  if (options_.failure_threshold < 1) options_.failure_threshold = 1;
  if (options_.open_cooldown_s < 0.0) options_.open_cooldown_s = 0.0;
  if (options_.half_open_max_probes < 1) options_.half_open_max_probes = 1;
}

CircuitBreaker::State CircuitBreaker::state(double now_s) {
  if (state_ == State::kOpen &&
      now_s - opened_at_s_ >= options_.open_cooldown_s) {
    state_ = State::kHalfOpen;
    half_open_inflight_ = 0;
  }
  return state_;
}

bool CircuitBreaker::AllowRequest(double now_s) {
  switch (state(now_s)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (half_open_inflight_ >= options_.half_open_max_probes) return false;
      ++half_open_inflight_;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double now_s) {
  (void)state(now_s);
  consecutive_failures_ = 0;
  half_open_inflight_ = 0;
  // A success in kHalfOpen proves recovery; a success while kOpen (a
  // request admitted just before the trip settled late) is evidence too.
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(double now_s) {
  State current = state(now_s);
  ++consecutive_failures_;
  if (current == State::kHalfOpen) {
    // The trial request failed: the dependency is still down.
    Open(now_s);
    return;
  }
  if (current == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    Open(now_s);
  }
  // Already kOpen: just extend the streak; the cooldown clock is NOT
  // reset, or a trickle of late failures could pin the breaker open
  // forever with no probe ever allowed.
}

void CircuitBreaker::Open(double now_s) {
  state_ = State::kOpen;
  opened_at_s_ = now_s;
  half_open_inflight_ = 0;
  ++times_opened_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kHalfOpen:
      return "half-open";
    case State::kOpen:
      return "open";
  }
  return "unknown";
}

}  // namespace fairem
