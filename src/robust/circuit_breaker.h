#ifndef FAIREM_ROBUST_CIRCUIT_BREAKER_H_
#define FAIREM_ROBUST_CIRCUIT_BREAKER_H_

#include <cstdint>

namespace fairem {

// Per-dependency circuit breaker (DESIGN.md §15): wraps an unreliable
// downstream (a serve backend, a remote store) so repeated failures stop
// costing latency and load. Classic three-state machine:
//
//   kClosed    normal operation; `failure_threshold` *consecutive*
//              failures trip it open (a single success resets the streak).
//   kOpen      requests are refused locally for `open_cooldown_s`; the
//              dependency gets room to recover instead of a retry storm.
//   kHalfOpen  after the cooldown, up to `half_open_max_probes` trial
//              requests may pass. One success closes the breaker; one
//              failure re-opens it (and restarts the cooldown).
//
// Time is injected as a monotonic `now_s` on every call, so the machine is
// deterministic under test and the caller (a single-threaded poll loop)
// pays no clock syscalls it was not already making. Not thread-safe by
// design — each event loop owns its breakers.

struct CircuitBreakerOptions {
  /// Consecutive failures that trip kClosed -> kOpen. Minimum 1.
  int failure_threshold = 3;
  /// Seconds spent refusing in kOpen before probing again.
  double open_cooldown_s = 1.0;
  /// Trial requests allowed through while kHalfOpen (in flight at once).
  int half_open_max_probes = 1;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {});

  /// Current state, advancing kOpen -> kHalfOpen when the cooldown has
  /// elapsed by `now_s`.
  State state(double now_s);

  /// Whether a request may be sent now. kClosed: always. kOpen: never.
  /// kHalfOpen: while fewer than `half_open_max_probes` trials are out
  /// (each true return claims a probe slot until the next Record*).
  bool AllowRequest(double now_s);

  /// A request completed successfully: resets the failure streak; a
  /// half-open trial success closes the breaker.
  void RecordSuccess(double now_s);

  /// A request failed (transport error, timeout, or an overload shed):
  /// extends the streak, trips the breaker at the threshold, and re-opens
  /// immediately from kHalfOpen.
  void RecordFailure(double now_s);

  int consecutive_failures() const { return consecutive_failures_; }
  /// Lifetime count of kClosed/kHalfOpen -> kOpen transitions.
  uint64_t times_opened() const { return times_opened_; }

  static const char* StateName(State state);

 private:
  void Open(double now_s);

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_inflight_ = 0;
  double opened_at_s_ = 0.0;
  uint64_t times_opened_ = 0;
};

}  // namespace fairem

#endif  // FAIREM_ROBUST_CIRCUIT_BREAKER_H_
