#include "src/robust/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// splitmix64 of a string hash — decorrelates per-site Rng streams from the
/// configure seed without depending on std::hash stability across builds.
uint64_t SiteSeed(uint64_t seed, std::string_view site) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  uint64_t z = (seed ^ h) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<FailpointSpec> ParseEntry(std::string_view entry) {
  FailpointSpec spec;
  size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + std::string(entry) +
                                   "' is not site=action(p[,skip])");
  }
  spec.site = std::string(TrimAscii(entry.substr(0, eq)));
  std::string_view rhs = TrimAscii(entry.substr(eq + 1));
  size_t open = rhs.find('(');
  if (open == std::string_view::npos || rhs.empty() || rhs.back() != ')') {
    return Status::InvalidArgument("failpoint action '" + std::string(rhs) +
                                   "' is not action(p[,skip])");
  }
  std::string_view action = TrimAscii(rhs.substr(0, open));
  if (action == "error") {
    spec.action = FailpointAction::kError;
  } else if (action == "crash") {
    spec.action = FailpointAction::kCrash;
  } else if (action == "hang") {
    spec.action = FailpointAction::kHang;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" +
                                   std::string(action) +
                                   "' (want error|crash|hang)");
  }
  std::string_view args = rhs.substr(open + 1, rhs.size() - open - 2);
  std::string_view p_text = args;
  if (size_t comma = args.find(','); comma != std::string_view::npos) {
    p_text = TrimAscii(args.substr(0, comma));
    std::string_view skip_text = TrimAscii(args.substr(comma + 1));
    double skip = 0.0;
    if (!ParseDouble(skip_text, &skip) || skip < 0.0) {
      return Status::InvalidArgument("bad failpoint skip count '" +
                                     std::string(skip_text) + "'");
    }
    spec.skip = static_cast<uint64_t>(skip);
  } else {
    p_text = TrimAscii(p_text);
  }
  if (!ParseDouble(p_text, &spec.probability) || spec.probability < 0.0 ||
      spec.probability > 1.0) {
    return Status::InvalidArgument("failpoint probability '" +
                                   std::string(p_text) +
                                   "' is not in [0, 1]");
  }
  return spec;
}

}  // namespace

Result<std::vector<FailpointSpec>> ParseFailpointSpecs(std::string_view spec) {
  std::vector<FailpointSpec> specs;
  for (const std::string& entry : Split(spec, ';')) {
    std::string_view trimmed = TrimAscii(entry);
    if (trimmed.empty()) continue;
    FAIREM_ASSIGN_OR_RETURN(FailpointSpec parsed, ParseEntry(trimmed));
    specs.push_back(std::move(parsed));
  }
  return specs;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("FAIREM_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  uint64_t seed = 1234;
  if (const char* seed_env = std::getenv("FAIREM_FAILPOINT_SEED")) {
    double v = 0.0;
    if (ParseDouble(seed_env, &v)) seed = static_cast<uint64_t>(v);
  }
  // A constructor cannot propagate a Status; a bad env spec is loud (the
  // whole point of arming failpoints is to see them fire).
  if (Status st = Configure(env, seed); !st.ok()) {
    FAIREM_LOG(ERROR) << "ignoring FAIREM_FAILPOINTS"
                      << LogKv("status", st.ToString());
  }
}

Status FailpointRegistry::Configure(std::string_view spec, uint64_t seed) {
  FAIREM_ASSIGN_OR_RETURN(std::vector<FailpointSpec> specs,
                          ParseFailpointSpecs(spec));
  std::lock_guard<std::mutex> lock(mu_);
  spec_text_ = std::string(spec);
  base_seed_ = seed;
  sites_.clear();
  for (FailpointSpec& parsed : specs) {
    ArmedSite site;
    site.rng = Rng(SiteSeed(seed, parsed.site));
    site.spec = std::move(parsed);
    std::string name = site.spec.site;
    sites_[std::move(name)] = std::move(site);
  }
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
  if (!sites_.empty()) {
    FAIREM_LOG(INFO) << "failpoints armed" << LogKv("spec", std::string(spec))
                     << LogKv("sites", sites_.size())
                     << LogKv("seed", seed);
  }
  return Status::OK();
}

void FailpointRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  spec_text_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FailpointRegistry::ReseedStreams(uint64_t salt) {
  std::string spec;
  uint64_t original_seed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sites_.empty()) return;
    spec = spec_text_;
    original_seed = base_seed_;
  }
  // splitmix-style mix so salt=1 does not just flip one seed bit.
  uint64_t z = salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  // Configure re-parses the spec it already accepted; it cannot fail.
  Status st = Configure(spec, original_seed ^ z);
  FAIREM_CHECK(st.ok(), "ReseedStreams re-configure failed: " + st.ToString());
  // Restore the original base seed so repeated reseeds stay a pure function
  // of (original seed, salt) rather than compounding.
  std::lock_guard<std::mutex> lock(mu_);
  base_seed_ = original_seed;
}

Status FailpointRegistry::Hit(std::string_view site) {
  static Counter* hits =
      MetricsRegistry::Global().GetCounter("fairem.robust.failpoint_hits");
  static Counter* injected = MetricsRegistry::Global().GetCounter(
      "fairem.robust.injected_errors");
  bool fire = false;
  uint64_t hit_number = 0;
  FailpointAction action = FailpointAction::kError;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    ArmedSite& armed = it->second;
    hit_number = ++armed.hits;
    hits->Increment();
    // Draw exactly one Bernoulli per hit so the fire pattern is a pure
    // function of (seed, site, hit index) — retries re-roll deterministically.
    bool roll = armed.rng.NextBool(armed.spec.probability);
    fire = roll && hit_number > armed.spec.skip;
    action = armed.spec.action;
  }
  if (!fire) return Status::OK();
  std::string what = "injected failure at " + std::string(site) + " (hit " +
                     std::to_string(hit_number) + ")";
  if (action == FailpointAction::kCrash) {
    // Mimic a hard kill: no atexit flushes, no stack unwinding.
    std::cerr << "FAIREM_FAILPOINT crash: " << what << "\n";
    std::_Exit(kCrashExitCode);
  }
  if (action == FailpointAction::kHang) {
    // Mimic a deadlock: block this thread until something kills the process
    // (the supervisor's watchdog, in the drills this exists for).
    std::cerr << "FAIREM_FAILPOINT hang: " << what << "\n";
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  injected->Increment();
  FAIREM_LOG(DEBUG) << "failpoint fired" << LogKv("site", std::string(site))
                    << LogKv("hit", hit_number);
  return Status::Internal(what);
}

uint64_t FailpointRegistry::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

}  // namespace fairem
