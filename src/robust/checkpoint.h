#ifndef FAIREM_ROBUST_CHECKPOINT_H_
#define FAIREM_ROBUST_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

/// Atomic per-key JSON checkpoints in a directory: each key maps to
/// `<dir>/<sanitized-key>.json`, written via temp-file + rename so a crash
/// mid-write never leaves a torn checkpoint behind. An empty `dir` disables
/// the store (every Load is NotFound, every Save a no-op) so callers can
/// thread one object through unconditionally.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// The payload saved under `key`, or NotFound.
  Result<std::string> Load(const std::string& key) const;

  /// Atomically and durably persists `payload` under `key`, creating the
  /// directory (and any missing parents) on first use. The temp file is
  /// fsynced before the rename and the directory after it, so a published
  /// checkpoint survives power loss, not just a crash. Overwrites any
  /// previous checkpoint for the key.
  Status Save(const std::string& key, const std::string& payload) const;

  /// Path of `key`'s checkpoint file (whether or not it exists).
  std::string PathFor(const std::string& key) const;

  /// Keys map to filenames: alphanumerics, '.', '-' and '_' pass through,
  /// every other byte becomes '_'.
  static std::string SanitizeKey(const std::string& key);

 private:
  std::string dir_;
};

/// The persisted outcome of one (matcher, dataset, single/pairwise) grid
/// cell — everything UnfairnessGridReport needs to replay the cell into an
/// UnfairnessGrid without re-running the matcher.
struct GridCellCheckpoint {
  std::string matcher;  // display name, e.g. "DTMatcher"
  std::string marker;   // plot marker, e.g. "DT"
  bool supported = true;
  bool error = false;
  std::string status;  // Status::ToString() when error
  /// Audit entries in report order (column order of the rendered grid is
  /// first-seen, so order must survive the round trip byte-exactly).
  struct Mark {
    std::string group;
    std::string measure;  // FairnessMeasureName
    bool unfair = false;
  };
  std::vector<Mark> marks;
};

/// Serializes a cell checkpoint as a single JSON object.
std::string GridCellToJson(const GridCellCheckpoint& cell);

/// Parses GridCellToJson output. Tolerates only that exact shape; anything
/// else is InvalidArgument (callers treat a corrupt checkpoint as a miss).
Result<GridCellCheckpoint> GridCellFromJson(const std::string& json);

}  // namespace fairem

#endif  // FAIREM_ROBUST_CHECKPOINT_H_
