#ifndef FAIREM_ROBUST_SUPERVISOR_H_
#define FAIREM_ROBUST_SUPERVISOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/obs/telemetry.h"
#include "src/robust/worker_process.h"
#include "src/util/result.h"

namespace fairem {

// Process-isolated task executor for the batch audit: each task runs in a
// forked worker child so a crash, OOM, or hang in one grid cell cannot take
// down the sweep. The parent supervises with a wall-clock watchdog
// (SIGKILL at the deadline), per-worker rlimits (RLIMIT_AS / RLIMIT_CPU),
// and a respawn budget; results travel back over a pipe (plus whatever the
// worker persisted, e.g. a cell checkpoint). The fork/pipe/exit-code
// machinery itself lives in src/robust/worker_process (shared with the
// serve daemon). See DESIGN.md §10 for the worker lifecycle.

struct SupervisorOptions {
  /// Max concurrent worker processes; 1 still forks (isolation without
  /// parallelism). Clamped to >= 1.
  int jobs = 1;
  /// Wall-clock deadline per spawn attempt; the worker's process group is
  /// SIGKILLed when it is exceeded. 0 disables the watchdog.
  double cell_timeout_s = 0.0;
  /// RLIMIT_AS cap per worker in MiB (address space, the portable stand-in
  /// for an RSS cap); an over-budget worker fails allocation and dies, which
  /// the supervisor contains like any crash. 0 disables.
  int cell_max_rss_mb = 0;
  /// RLIMIT_CPU cap per worker in seconds (kernel-side backstop to the
  /// watchdog for spin hangs). 0 disables.
  int cell_max_cpu_s = 0;
  /// Spawn attempts per task including the first, mirroring
  /// RetryPolicy::max_attempts. Crashes and timeouts always respawn;
  /// task-level errors respawn only when IsRetryableStatus holds.
  int max_attempts = 3;
  /// Supervision loop poll interval.
  double poll_interval_s = 0.01;
  /// Ship each worker's metrics delta and completed spans back to the
  /// parent (telemetry section on the pipe, durable sidecar file for the
  /// crash path — DESIGN.md §11). With this on, merged parent metrics for a
  /// --jobs N run equal the sequential run's.
  bool ship_telemetry = true;
  /// Directory for telemetry sidecar files. Empty means a private directory
  /// under the system temp dir, created for the run and removed afterwards.
  std::string telemetry_dir;
  /// Invoked from the poll loop (single-threaded, possibly many times per
  /// second) after every state change; wire a ProgressReporter here for the
  /// live progress line. last_cell_seconds is >= 0 exactly once per settled
  /// worker.
  std::function<void(const ProgressSnapshot&)> on_progress;
};

/// What happened to one task after all spawn attempts.
struct TaskOutcome {
  enum class Kind {
    kOk,        // payload holds the worker's result
    kFailed,    // the task itself returned an error Status (shipped back)
    kCrashed,   // the worker died (signal, _Exit, OOM under rlimit)
    kTimedOut,  // the watchdog killed the worker at the deadline
    kCancelled, // shutdown was requested before the task finished
  };
  Kind kind = Kind::kCancelled;
  std::string payload;   // valid when kind == kOk
  Status status = Status::OK();  // failure detail otherwise
  int attempts = 0;      // spawn attempts consumed
  int exit_status = 0;   // raw waitpid status of the last attempt
  double wall_seconds = 0.0;  // wall time of the last attempt
  double peak_rss_mb = 0.0;   // ru_maxrss of the last attempt
};

const char* TaskOutcomeKindName(TaskOutcome::Kind kind);

/// Cooperative SIGINT/SIGTERM shutdown. Installing the guard (re)arms the
/// handlers and clears any previously latched signal; destruction restores
/// the prior handlers. The supervisor polls requested() and, when set,
/// kills and reaps every worker before returning Cancelled — no orphan
/// processes, no half-written state. Sequential grid runs poll it between
/// cells for the same clean exit.
class ShutdownGuard {
 public:
  ShutdownGuard();
  ~ShutdownGuard();
  ShutdownGuard(const ShutdownGuard&) = delete;
  ShutdownGuard& operator=(const ShutdownGuard&) = delete;

  static bool requested();
  /// The latched signal number (SIGINT/SIGTERM), or 0.
  static int signal_number();

 private:
  void* saved_int_;   // struct sigaction*, opaque to keep <csignal> out
  void* saved_term_;
};

/// The conventional exit code for a run stopped by `sig` (128 + signal,
/// e.g. 130 for SIGINT) — what a shell reports for a signal death, but
/// reached here through a clean flush-everything shutdown.
int InterruptExitCode(int sig);

/// Runs tasks in forked worker children, at most `options.jobs` at a time,
/// respawning per the retry budget. Outcomes are returned in task order
/// regardless of completion order. Metrics land under fairem.supervisor.*;
/// per-worker wall seconds, peak RSS, and exit status are logged at INFO.
///
/// Returns Cancelled when a ShutdownGuard signal arrives mid-run (workers
/// are killed and reaped first), IOError if workers cannot be spawned at
/// all. Individual task failures never fail the call — they are reported in
/// the per-task outcome.
class Supervisor {
 public:
  struct Task {
    /// Identifies the task in logs and metrics.
    std::string key;
    /// Runs in the forked child. On OK the returned string is shipped to
    /// the parent over the pipe (kept small-ish: it is buffered in memory
    /// on both sides). The child never returns to the caller's code after
    /// `run` — it exits via _Exit, so no atexit hooks fire and parent-side
    /// state (metrics files, trace buffers) is never clobbered.
    std::function<Result<std::string>()> run;
  };

  explicit Supervisor(SupervisorOptions options);

  Result<std::vector<TaskOutcome>> Run(const std::vector<Task>& tasks);

 private:
  SupervisorOptions options_;
};

}  // namespace fairem

#endif  // FAIREM_ROBUST_SUPERVISOR_H_
