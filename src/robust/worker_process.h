#ifndef FAIREM_ROBUST_WORKER_PROCESS_H_
#define FAIREM_ROBUST_WORKER_PROCESS_H_

#include <sys/resource.h>
#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace fairem {

// One crash-isolated worker child and its parent-side handle. This is the
// fork/pipe/rlimit/telemetry-ship machinery shared by the batch Supervisor
// (grid sweeps) and the serve daemon (per-query workers): the child runs a
// closure, ships its Result<std::string> back over a pipe — wrapped in
// FEMTEL1 telemetry frames when requested — and exits through the
// exit-code protocol below. The parent polls the handle without blocking,
// so one loop can watch many workers plus unrelated fds (sockets, timers).

/// Worker exit codes (the parent <-> worker protocol). Anything else —
/// including a signal death — is treated as a crash.
///
///   kWorkerExitOk        the body returned OK; the pipe carries its payload
///   kWorkerExitTaskError the body returned a Status; the pipe carries
///                        EncodeShippedStatus ("<code int>\n<message>")
///   kWorkerExitProtocol  the worker could not set itself up or ship its
///                        result (pipe write failure, rlimit setup failure)
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitTaskError = 3;
inline constexpr int kWorkerExitProtocol = 4;

/// Serializes an error Status for the pipe: "<code int>\n<message>".
std::string EncodeShippedStatus(const Status& status);

/// Reconstructs the Status a worker shipped with EncodeShippedStatus.
/// Malformed bytes (a crashed worker's partial write) become kInternal.
Status ParseShippedStatus(const std::string& wire);

struct WorkerSpawnOptions {
  /// Identifies the work in logs, telemetry, and sidecar filenames.
  std::string task_key;
  /// 1-based spawn attempt, recorded in shipped telemetry.
  int attempt = 1;
  /// RLIMIT_AS cap in MiB; an over-budget worker fails allocation and dies
  /// as a contained crash. 0 disables.
  int max_rss_mb = 0;
  /// RLIMIT_CPU cap in seconds (kernel backstop for spin hangs). 0 disables.
  int max_cpu_s = 0;
  /// Ship the worker's metrics delta and completed spans back on the pipe
  /// as FEMTEL1 frames ahead of the payload.
  bool ship_telemetry = false;
  /// Directory for durable telemetry sidecars (the crash path's copy).
  /// Empty means pipe-only shipping, no sidecar files.
  std::string telemetry_dir;
  /// When nonzero, the child reseeds probabilistic failpoint streams with
  /// this value, so respawns (and sibling workers) draw independently.
  uint64_t failpoint_reseed = 0;
  /// Failpoint site checked in the child after shipping, before _Exit —
  /// the injection point for shipped-then-crashed workers. Empty disables.
  std::string ship_failpoint;
  /// Parent-owned fds the child must close (sibling pipes, listening
  /// sockets, client connections). The child also closes its own read end.
  std::vector<int> close_in_child;
};

class WorkerProcess {
 public:
  WorkerProcess() = default;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  /// Closes the pipe fd. Does NOT kill or reap — an abandoning caller must
  /// KillAndReap() explicitly (silent reaping here would hide leaks).
  ~WorkerProcess();

  /// Forks a child that runs `body` and ships its result. In the child:
  /// own process group (one-shot group kill), default signal handlers,
  /// parent-death SIGKILL, rlimits, optional profiler restart and failpoint
  /// reseed, a noexcept barrier around `body`, then _Exit — the child never
  /// returns to the caller's code, so no atexit hooks fire and parent-side
  /// state is never clobbered. In the parent: the pipe's read end is
  /// nonblocking for poll-loop supervision.
  static Result<WorkerProcess> Spawn(
      const std::function<Result<std::string>()>& body,
      const WorkerSpawnOptions& options);

  /// Appends whatever the pipe currently holds to received(); never blocks.
  void Drain();

  /// wait4(WNOHANG). On reap: drains the final bytes, closes the pipe,
  /// fills *status / *usage, and returns true. The handle then reports
  /// valid() == false for Kill/Drain purposes but keeps received().
  bool TryReap(int* status, rusage* usage);

  /// SIGKILLs the worker's whole process group (and the worker itself, in
  /// case it died before its setpgid took effect).
  void Kill();

  /// Kill() then blocking waitpid + pipe close: the abandon path.
  void KillAndReap();

  /// Wall-clock seconds since the spawn.
  double AgeSeconds() const;

  /// Unix microseconds at Spawn time — the start timestamp for worker
  /// spans (DESIGN.md §16), so fork+compute cost lands on the worker's
  /// own track in a merged trace. 0 for a default-constructed handle.
  int64_t spawn_unix_us() const { return spawn_unix_us_; }

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  /// Parent's nonblocking read end; -1 once reaped. Poll it for readability
  /// as a cheap "worker wrote or exited" wakeup.
  int pipe_fd() const { return pipe_fd_; }
  const std::string& received() const { return received_; }
  std::string TakeReceived() { return std::move(received_); }

 private:
  pid_t pid_ = -1;
  int pipe_fd_ = -1;
  std::string received_;
  std::chrono::steady_clock::time_point start_;
  int64_t spawn_unix_us_ = 0;
};

}  // namespace fairem

#endif  // FAIREM_ROBUST_WORKER_PROCESS_H_
