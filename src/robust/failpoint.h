#ifndef FAIREM_ROBUST_FAILPOINT_H_
#define FAIREM_ROBUST_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {

/// What a fired failpoint does to the process.
enum class FailpointAction {
  /// The hit returns an injected error Status (kInternal) to the caller —
  /// simulates a transient or permanent recoverable failure.
  kError,
  /// The hit terminates the process immediately via _Exit (no atexit
  /// flushes, like a kill -9 mid-run). Exit code kCrashExitCode.
  kCrash,
  /// The hit blocks the calling thread forever (sleep loop) — a simulated
  /// deadlock/livelock. Only meaningful under a supervisor watchdog
  /// (src/robust/supervisor.h), which SIGKILLs the hung worker at its
  /// deadline; in an unsupervised process the hit really does hang.
  kHang,
};

/// Exit code of a crash-action failpoint, chosen to be recognisable in
/// kill/resume tests.
inline constexpr int kCrashExitCode = 134;

/// One parsed failpoint: fire `action` at `site` with probability
/// `probability` per hit, after letting the first `skip` hits pass.
struct FailpointSpec {
  std::string site;
  FailpointAction action = FailpointAction::kError;
  double probability = 1.0;
  uint64_t skip = 0;
};

/// Parses a failpoint spec string:
///
///   spec  := entry (';' entry)*
///   entry := site '=' action '(' p [',' skip] ')'
///   action := 'error' | 'crash' | 'hang'
///
/// e.g. "csv_read=error(0.05);grid_cell=crash(1,5)" — inject an error on 5%
/// of CSV reads, and crash on the 6th grid cell. `p` must be in [0, 1].
Result<std::vector<FailpointSpec>> ParseFailpointSpecs(std::string_view spec);

/// Process-wide registry of armed failpoints. Deterministic: each site owns
/// a seeded Rng and a hit counter, so the same spec + seed always fires on
/// the same hits. When no failpoint is armed, FAIREM_FAILPOINT costs one
/// relaxed atomic load — injection sites can stay in hot paths permanently.
///
/// On first use the registry arms itself from the FAIREM_FAILPOINTS
/// environment variable (seeded by FAIREM_FAILPOINT_SEED, default 1234), so
/// any binary can be fault-injected without flag plumbing; Configure (e.g.
/// from --failpoints) replaces the armed set.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// Replaces the armed set with `spec` (empty spec disarms everything).
  Status Configure(std::string_view spec, uint64_t seed = 1234);

  /// Re-arms the last configured spec with its streams reseeded by `salt`
  /// (and hit counters reset). The supervisor calls this in respawned worker
  /// children (salt = attempt number) so probabilistic failpoints draw
  /// independently across spawn attempts — a crash(0.5) cell can fail on one
  /// attempt and pass on the next, like a real transient crash. No-op when
  /// nothing is armed.
  void ReseedStreams(uint64_t salt);

  /// Disarms every failpoint.
  void Clear();

  /// True when at least one failpoint is armed (the fast-path gate).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Registers a hit at `site`: returns an injected error, crashes the
  /// process, or returns OK. Sites not armed always return OK.
  Status Hit(std::string_view site);

  /// Total times `site` was hit (armed or not recorded only when armed).
  uint64_t HitCount(std::string_view site) const;

 private:
  FailpointRegistry();

  struct ArmedSite {
    FailpointSpec spec;
    Rng rng{0};
    uint64_t hits = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::map<std::string, ArmedSite, std::less<>> sites_;
  /// Last Configure inputs, for ReseedStreams.
  std::string spec_text_;
  uint64_t base_seed_ = 1234;
};

/// Returns the injected Status for `site`, or OK. Prefer the
/// FAIREM_FAILPOINT macro, which early-outs before evaluating `site`.
inline Status CheckFailpoint(std::string_view site) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (!reg.armed()) return Status::OK();
  return reg.Hit(site);
}

}  // namespace fairem

/// Injection site: returns the injected error from the enclosing function
/// (which must return Status or Result<T>) when the failpoint fires. The
/// site expression is not evaluated unless some failpoint is armed.
#define FAIREM_FAILPOINT(site)                                        \
  do {                                                                \
    if (::fairem::FailpointRegistry::Global().armed()) {              \
      ::fairem::Status _fp_st =                                       \
          ::fairem::FailpointRegistry::Global().Hit(site);            \
      if (!_fp_st.ok()) return _fp_st;                                \
    }                                                                 \
  } while (false)

#endif  // FAIREM_ROBUST_FAILPOINT_H_
