#include "src/robust/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace fairem {
namespace {

std::mutex g_sleep_mu;
std::function<void(double)> g_sleep_override;

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

double BackoffSeconds(const RetryPolicy& policy, int retry, Rng* rng) {
  double base = policy.initial_backoff_seconds *
                std::pow(policy.backoff_multiplier, retry - 1);
  base = std::min(base, policy.max_backoff_seconds);
  double jitter = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  double scale = rng->NextDouble(1.0 - jitter, 1.0 + jitter);
  return std::max(0.0, base * scale);
}

void SetRetrySleepFnForTest(std::function<void(double)> fn) {
  std::lock_guard<std::mutex> lock(g_sleep_mu);
  g_sleep_override = std::move(fn);
}

namespace retry_internal {

void SleepSeconds(double seconds) {
  {
    std::lock_guard<std::mutex> lock(g_sleep_mu);
    if (g_sleep_override) {
      g_sleep_override(seconds);
      return;
    }
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CountRetry(const Status& status) {
  static Counter* retries =
      MetricsRegistry::Global().GetCounter("fairem.robust.retries");
  retries->Increment();
  FAIREM_LOG(DEBUG) << "retrying after transient failure"
                    << LogKv("status", status.ToString());
}

void CountGiveUp() {
  static Counter* giveups =
      MetricsRegistry::Global().GetCounter("fairem.robust.retry_giveups");
  giveups->Increment();
}

void CountSuccessAfterRetry() {
  static Counter* successes =
      MetricsRegistry::Global().GetCounter("fairem.robust.retry_successes");
  successes->Increment();
}

}  // namespace retry_internal
}  // namespace fairem
