#include "src/robust/checkpoint.h"

#include <sstream>

#include "src/robust/failpoint.h"
#include "src/util/durable_file.h"
#include "src/util/io_util.h"
#include "src/util/json.h"

namespace fairem {
namespace {

/// Minimal cursor over the checkpoint JSON subset (strings, bools, and the
/// marks array of [string, string, bool] triples).
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Err(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    FAIREM_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape digit");
            }
          }
          // We only ever emit \u for control bytes; anything wider is not
          // our writer's output.
          if (value >= 0x80) return Err("unsupported \\u escape");
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          return Err("unsupported escape");
      }
    }
    return Err("unterminated string");
  }

  Result<bool> ParseBool() {
    SkipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    return Result<bool>(Err("expected true/false"));
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument("checkpoint JSON: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string CheckpointStore::SanitizeKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

std::string CheckpointStore::PathFor(const std::string& key) const {
  return dir_ + "/" + SanitizeKey(key) + ".json";
}

Result<std::string> CheckpointStore::Load(const std::string& key) const {
  if (!enabled()) return Status::NotFound("checkpointing disabled");
  FAIREM_FAILPOINT("checkpoint_load");
  return ReadFileToString(PathFor(key));
}

Status CheckpointStore::Save(const std::string& key,
                             const std::string& payload) const {
  if (!enabled()) return Status::OK();
  FAIREM_FAILPOINT("checkpoint_save");
  return WriteFileDurable(PathFor(key), payload);
}

std::string GridCellToJson(const GridCellCheckpoint& cell) {
  std::ostringstream os;
  os << "{\"matcher\":";
  AppendJsonString(&os, cell.matcher);
  os << ",\"marker\":";
  AppendJsonString(&os, cell.marker);
  os << ",\"supported\":" << (cell.supported ? "true" : "false");
  os << ",\"error\":" << (cell.error ? "true" : "false");
  os << ",\"status\":";
  AppendJsonString(&os, cell.status);
  os << ",\"marks\":[";
  for (size_t i = 0; i < cell.marks.size(); ++i) {
    if (i > 0) os << ',';
    os << '[';
    AppendJsonString(&os, cell.marks[i].group);
    os << ',';
    AppendJsonString(&os, cell.marks[i].measure);
    os << ',' << (cell.marks[i].unfair ? "true" : "false") << ']';
  }
  os << "]}\n";
  return os.str();
}

Result<GridCellCheckpoint> GridCellFromJson(const std::string& json) {
  GridCellCheckpoint cell;
  JsonCursor cur(json);
  FAIREM_RETURN_NOT_OK(cur.Expect('{'));
  bool first = true;
  while (!cur.TryConsume('}')) {
    if (!first) FAIREM_RETURN_NOT_OK(cur.Expect(','));
    first = false;
    FAIREM_ASSIGN_OR_RETURN(std::string field, cur.ParseString());
    FAIREM_RETURN_NOT_OK(cur.Expect(':'));
    if (field == "matcher") {
      FAIREM_ASSIGN_OR_RETURN(cell.matcher, cur.ParseString());
    } else if (field == "marker") {
      FAIREM_ASSIGN_OR_RETURN(cell.marker, cur.ParseString());
    } else if (field == "supported") {
      FAIREM_ASSIGN_OR_RETURN(cell.supported, cur.ParseBool());
    } else if (field == "error") {
      FAIREM_ASSIGN_OR_RETURN(cell.error, cur.ParseBool());
    } else if (field == "status") {
      FAIREM_ASSIGN_OR_RETURN(cell.status, cur.ParseString());
    } else if (field == "marks") {
      FAIREM_RETURN_NOT_OK(cur.Expect('['));
      if (!cur.TryConsume(']')) {
        do {
          GridCellCheckpoint::Mark mark;
          FAIREM_RETURN_NOT_OK(cur.Expect('['));
          FAIREM_ASSIGN_OR_RETURN(mark.group, cur.ParseString());
          FAIREM_RETURN_NOT_OK(cur.Expect(','));
          FAIREM_ASSIGN_OR_RETURN(mark.measure, cur.ParseString());
          FAIREM_RETURN_NOT_OK(cur.Expect(','));
          FAIREM_ASSIGN_OR_RETURN(mark.unfair, cur.ParseBool());
          FAIREM_RETURN_NOT_OK(cur.Expect(']'));
          cell.marks.push_back(std::move(mark));
        } while (cur.TryConsume(','));
        FAIREM_RETURN_NOT_OK(cur.Expect(']'));
      }
    } else {
      return Status::InvalidArgument("checkpoint JSON: unknown field '" +
                                     field + "'");
    }
  }
  if (cell.matcher.empty()) {
    return Status::InvalidArgument("checkpoint JSON: missing matcher");
  }
  return cell;
}

}  // namespace fairem
