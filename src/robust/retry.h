#ifndef FAIREM_ROBUST_RETRY_H_
#define FAIREM_ROBUST_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace fairem {

/// Exponential backoff with jitter and an overall deadline. Attempt n
/// (1-based) sleeps `initial_backoff_seconds * multiplier^(n-1)` capped at
/// `max_backoff_seconds`, scaled by a uniform jitter in
/// [1 - jitter_fraction, 1 + jitter_fraction].
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  int max_attempts = 3;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  double jitter_fraction = 0.5;
  /// Wall-clock budget across all attempts and sleeps; <= 0 means none.
  double deadline_seconds = 0.0;
};

/// True for codes worth retrying: kInternal, kIOError, and kUnavailable
/// (transient infra failures and overload sheds). Input errors
/// (kInvalidArgument, kNotFound, ...) and expired deadlines never are.
bool IsRetryableStatus(const Status& status);

/// The jittered backoff before retry number `retry` (1-based).
double BackoffSeconds(const RetryPolicy& policy, int retry, Rng* rng);

namespace retry_internal {

/// Real monotonic sleep, swappable for tests via SetRetrySleepFnForTest.
void SleepSeconds(double seconds);
/// Seconds elapsed on the monotonic clock since an arbitrary epoch.
double MonotonicSeconds();
void CountRetry(const Status& status);
void CountGiveUp();
void CountSuccessAfterRetry();

template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
inline const Status& StatusOf(const Status& s) { return s; }

}  // namespace retry_internal

/// Replaces the sleep used between retries (tests pass a recorder to avoid
/// real delays); nullptr restores the real sleep.
void SetRetrySleepFnForTest(std::function<void(double)> fn);

/// Runs `fn` (returning Status or Result<T>) under `policy`: retryable
/// failures are retried with jittered exponential backoff until success,
/// a non-retryable error, attempt exhaustion, or the deadline. Returns the
/// last attempt's outcome. Retries/give-ups are counted in the metrics
/// registry (fairem.robust.retries / retry_giveups / retry_successes).
/// `seed` makes the jitter sequence deterministic per call site.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, Fn&& fn, uint64_t seed = 1234)
    -> decltype(fn()) {
  Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
  const double start = retry_internal::MonotonicSeconds();
  int attempt = 1;
  while (true) {
    auto outcome = fn();
    const Status& status = retry_internal::StatusOf(outcome);
    if (status.ok()) {
      if (attempt > 1) retry_internal::CountSuccessAfterRetry();
      return outcome;
    }
    if (!IsRetryableStatus(status) || attempt >= policy.max_attempts) {
      retry_internal::CountGiveUp();
      return outcome;
    }
    double backoff = BackoffSeconds(policy, attempt, &rng);
    if (policy.deadline_seconds > 0.0 &&
        retry_internal::MonotonicSeconds() - start + backoff >
            policy.deadline_seconds) {
      retry_internal::CountGiveUp();
      return outcome;
    }
    retry_internal::CountRetry(status);
    retry_internal::SleepSeconds(backoff);
    ++attempt;
  }
}

}  // namespace fairem

#endif  // FAIREM_ROBUST_RETRY_H_
