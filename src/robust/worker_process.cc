#include "src/robust/worker_process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/robust/failpoint.h"
#include "src/text/simd.h"
#include "src/util/io_util.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

bool ApplyWorkerLimits(const WorkerSpawnOptions& options) {
  if (options.max_rss_mb > 0) {
    rlimit lim;
    lim.rlim_cur = lim.rlim_max = static_cast<rlim_t>(options.max_rss_mb)
                                  << 20;
    if (::setrlimit(RLIMIT_AS, &lim) != 0) return false;
  }
  if (options.max_cpu_s > 0) {
    rlimit lim;
    lim.rlim_cur = lim.rlim_max = static_cast<rlim_t>(options.max_cpu_s);
    if (::setrlimit(RLIMIT_CPU, &lim) != 0) return false;
  }
  return true;
}

[[noreturn]] void RunChild(const std::function<Result<std::string>()>& body,
                           const WorkerSpawnOptions& options, int write_fd,
                           int read_fd) {
  // Own process group, so the watchdog can kill the worker and anything it
  // spawned in one shot, and terminal Ctrl-C reaches only the supervising
  // process (which shuts the fleet down cooperatively).
  ::setpgid(0, 0);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
#ifdef __linux__
  // If the parent itself is SIGKILLed, die with it — no orphans.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  ::close(read_fd);
  for (int fd : options.close_in_child) ::close(fd);
  if (!ApplyWorkerLimits(options)) std::_Exit(kWorkerExitProtocol);
  // fork() cleared the interval timer; re-arm so this worker samples its
  // own work, into a buffer reset of the parent's samples, with its stacks
  // rooted at process:worker_<pid>.
  const bool profiling = Profiler::Global().active();
  if (profiling) {
    (void)Profiler::Global().RestartAfterFork("worker_" +
                                              std::to_string(::getpid()));
  }
  if (options.failpoint_reseed != 0) {
    // Probabilistic failpoints draw fresh per respawn (and per sibling), so
    // an injected transient crash behaves like a transient real one.
    FailpointRegistry::Global().ReseedStreams(options.failpoint_reseed);
  }
  // The fork copied the parent's metric values and trace buffer; the
  // baseline lets the worker ship only what the body itself adds.
  MetricsSnapshot telemetry_baseline;
  size_t span_watermark = 0;
  if (options.ship_telemetry) {
    FlushSimdTelemetry();
    telemetry_baseline = MetricsRegistry::Global().Snapshot();
    span_watermark = Tracer::Global().EventCount();
  }
  // noexcept barrier: an exception escaping the body (e.g. bad_alloc under
  // RLIMIT_AS) must terminate HERE as a contained crash — if it unwound
  // further it would re-enter the forked copy of the caller's stack (worst
  // case: a test harness's catch block resumes running the caller's code
  // in the child).
  Result<std::string> result = [&]() noexcept { return body(); }();
  std::string wire;
  int exit_code;
  if (result.ok()) {
    wire = std::move(result).value();
    exit_code = kWorkerExitOk;
  } else {
    wire = EncodeShippedStatus(result.status());
    exit_code = kWorkerExitTaskError;
  }
  if (options.ship_telemetry) {
    // Samples must land in the metrics registry before the snapshot below
    // diffs it, so the per-stage counters ship with the delta.
    std::string folded;
    if (profiling) {
      (void)Profiler::Global().Stop();
      Profiler::Global().ExportMetrics();
      folded = Profiler::Global().Collect().ToText();
    }
    WorkerTelemetry telemetry;
    telemetry.task_key = options.task_key;
    telemetry.attempt = options.attempt;
    telemetry.pid = static_cast<int64_t>(::getpid());
    // Kernel tallies batched on this thread must fold in before the diff,
    // or the tail of the batch would vanish with the worker.
    FlushSimdTelemetry();
    telemetry.metrics =
        DiffSnapshots(telemetry_baseline, MetricsRegistry::Global().Snapshot());
    telemetry.spans = Tracer::Global().EventsSince(span_watermark);
    // Sidecars before the pipe: if the writes below never complete the
    // parent can still sweep the files up. Best effort — a worker that
    // cannot write them still ships on the pipe.
    if (!options.telemetry_dir.empty()) {
      (void)WriteTelemetrySidecar(options.telemetry_dir, telemetry);
    }
    std::vector<TelemetryFrame> frames;
    frames.push_back({kFrameTelemetry, SerializeWorkerTelemetry(telemetry)});
    if (!folded.empty()) {
      if (!options.telemetry_dir.empty()) {
        (void)WriteProfileSidecar(options.telemetry_dir, options.task_key,
                                  options.attempt, folded);
      }
      frames.push_back({kFrameProfile, std::move(folded)});
    }
    wire = EncodeTelemetryWire(frames, wire);
  }
  if (!WriteFull(write_fd, wire).ok()) std::_Exit(kWorkerExitProtocol);
  ::close(write_fd);
  // Injection site for shipped-then-crashed workers: with a crash action
  // armed here the parent sees the full wire AND a sidecar AND a crash
  // exit — the double-delivery dedup's worst case.
  if (!options.ship_failpoint.empty()) {
    (void)CheckFailpoint(options.ship_failpoint);
  }
  // _Exit: no atexit hooks — the parent owns metrics/trace files.
  std::_Exit(exit_code);
}

}  // namespace

std::string EncodeShippedStatus(const Status& status) {
  return std::to_string(static_cast<int>(status.code())) + "\n" +
         status.message();
}

Status ParseShippedStatus(const std::string& wire) {
  size_t nl = wire.find('\n');
  double code_value = 0.0;
  if (nl == std::string::npos ||
      !ParseDouble(std::string_view(wire).substr(0, nl), &code_value) ||
      code_value < 1.0 ||
      code_value > static_cast<double>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("worker shipped malformed status: " +
                            wire.substr(0, 128));
  }
  return Status(static_cast<StatusCode>(static_cast<int>(code_value)),
                wire.substr(nl + 1));
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      pipe_fd_(std::exchange(other.pipe_fd_, -1)),
      received_(std::move(other.received_)),
      start_(other.start_),
      spawn_unix_us_(other.spawn_unix_us_) {}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    if (pipe_fd_ >= 0) ::close(pipe_fd_);
    pid_ = std::exchange(other.pid_, -1);
    pipe_fd_ = std::exchange(other.pipe_fd_, -1);
    received_ = std::move(other.received_);
    start_ = other.start_;
    spawn_unix_us_ = other.spawn_unix_us_;
  }
  return *this;
}

WorkerProcess::~WorkerProcess() {
  if (pipe_fd_ >= 0) ::close(pipe_fd_);
}

Result<WorkerProcess> WorkerProcess::Spawn(
    const std::function<Result<std::string>()>& body,
    const WorkerSpawnOptions& options) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IOError(std::string("pipe failed: ") +
                           std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IOError(std::string("fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) RunChild(body, options, fds[1], fds[0]);
  // ----- parent -----
  ::setpgid(pid, pid);  // mirror the child's setpgid to close the race
  ::close(fds[1]);
  int fd_flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, fd_flags | O_NONBLOCK);
  WorkerProcess worker;
  worker.pid_ = pid;
  worker.pipe_fd_ = fds[0];
  worker.start_ = std::chrono::steady_clock::now();
  worker.spawn_unix_us_ = UnixMicrosNow();
  return worker;
}

void WorkerProcess::Drain() {
  if (pipe_fd_ < 0) return;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(pipe_fd_, buf, sizeof(buf));
    if (n > 0) {
      received_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or EAGAIN
  }
}

bool WorkerProcess::TryReap(int* status, rusage* usage) {
  if (pid_ <= 0) return false;
  std::memset(usage, 0, sizeof(*usage));
  pid_t reaped = ::wait4(pid_, status, WNOHANG, usage);
  if (reaped != pid_) return false;
  Drain();  // bytes written between the last drain and exit
  if (pipe_fd_ >= 0) {
    ::close(pipe_fd_);
    pipe_fd_ = -1;
  }
  pid_ = -1;
  return true;
}

void WorkerProcess::Kill() {
  if (pid_ <= 0) return;
  ::kill(-pid_, SIGKILL);
  ::kill(pid_, SIGKILL);
}

void WorkerProcess::KillAndReap() {
  if (pid_ <= 0) return;
  Kill();
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
  if (pipe_fd_ >= 0) {
    ::close(pipe_fd_);
    pipe_fd_ = -1;
  }
}

double WorkerProcess::AgeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace fairem
