#include "src/robust/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/robust/failpoint.h"
#include "src/robust/retry.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

std::atomic<int> g_shutdown_signal{0};

void OnShutdownSignal(int sig) {
  // Only the lock-free store: everything else waits for the poll loop.
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A worker child currently being supervised.
struct RunningWorker {
  size_t task_index = 0;
  pid_t pid = -1;
  int pipe_fd = -1;  // parent's nonblocking read end
  std::string received;
  std::chrono::steady_clock::time_point start;
  bool timed_out = false;
};

bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

/// Appends whatever the pipe currently holds; never blocks.
void DrainPipe(RunningWorker* worker) {
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(worker->pipe_fd, buf, sizeof(buf));
    if (n > 0) {
      worker->received.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or EAGAIN
  }
}

/// SIGKILLs the worker's whole process group (and the worker itself, in
/// case it died before its setpgid took effect).
void KillWorker(pid_t pid) {
  ::kill(-pid, SIGKILL);
  ::kill(pid, SIGKILL);
}

bool ApplyWorkerLimits(const SupervisorOptions& options) {
  if (options.cell_max_rss_mb > 0) {
    rlimit lim;
    lim.rlim_cur = lim.rlim_max =
        static_cast<rlim_t>(options.cell_max_rss_mb) << 20;
    if (::setrlimit(RLIMIT_AS, &lim) != 0) return false;
  }
  if (options.cell_max_cpu_s > 0) {
    rlimit lim;
    lim.rlim_cur = lim.rlim_max = static_cast<rlim_t>(options.cell_max_cpu_s);
    if (::setrlimit(RLIMIT_CPU, &lim) != 0) return false;
  }
  return true;
}

/// Reconstructs the Status a worker shipped as "<code int>\n<message>".
Status ParseShippedStatus(const std::string& wire) {
  size_t nl = wire.find('\n');
  double code_value = 0.0;
  if (nl == std::string::npos ||
      !ParseDouble(std::string_view(wire).substr(0, nl), &code_value) ||
      code_value < 1.0 ||
      code_value > static_cast<double>(StatusCode::kCancelled)) {
    return Status::Internal("worker shipped malformed status: " +
                            wire.substr(0, 128));
  }
  return Status(static_cast<StatusCode>(static_cast<int>(code_value)),
                wire.substr(nl + 1));
}

}  // namespace

const char* TaskOutcomeKindName(TaskOutcome::Kind kind) {
  switch (kind) {
    case TaskOutcome::Kind::kOk:
      return "ok";
    case TaskOutcome::Kind::kFailed:
      return "failed";
    case TaskOutcome::Kind::kCrashed:
      return "crashed";
    case TaskOutcome::Kind::kTimedOut:
      return "timed_out";
    case TaskOutcome::Kind::kCancelled:
      return "cancelled";
  }
  return "?";
}

ShutdownGuard::ShutdownGuard() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
  auto* saved_int = new struct sigaction;
  auto* saved_term = new struct sigaction;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, saved_int);
  ::sigaction(SIGTERM, &sa, saved_term);
  saved_int_ = saved_int;
  saved_term_ = saved_term;
}

ShutdownGuard::~ShutdownGuard() {
  ::sigaction(SIGINT, static_cast<struct sigaction*>(saved_int_), nullptr);
  ::sigaction(SIGTERM, static_cast<struct sigaction*>(saved_term_), nullptr);
  delete static_cast<struct sigaction*>(saved_int_);
  delete static_cast<struct sigaction*>(saved_term_);
}

bool ShutdownGuard::requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownGuard::signal_number() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

int InterruptExitCode(int sig) { return 128 + (sig > 0 ? sig : SIGINT); }

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.poll_interval_s <= 0.0) options_.poll_interval_s = 0.01;
}

Result<std::vector<TaskOutcome>> Supervisor::Run(
    const std::vector<Task>& tasks) {
  static Counter* spawned = MetricsRegistry::Global().GetCounter(
      "fairem.supervisor.workers_spawned");
  static Counter* respawns =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.respawns");
  static Counter* tasks_ok =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.tasks_ok");
  static Counter* tasks_failed =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.tasks_failed");
  static Counter* tasks_crashed =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.tasks_crashed");
  static Counter* tasks_timed_out = MetricsRegistry::Global().GetCounter(
      "fairem.supervisor.tasks_timed_out");
  static Counter* watchdog_kills = MetricsRegistry::Global().GetCounter(
      "fairem.supervisor.watchdog_kills");
  static Counter* shutdowns =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.shutdowns");
  static Histogram* wall_hist = MetricsRegistry::Global().GetHistogram(
      "fairem.supervisor.task_wall_seconds");
  static Gauge* max_rss = MetricsRegistry::Global().GetGauge(
      "fairem.supervisor.max_peak_rss_mb");
  static Counter* sidecars_swept = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.sidecars_swept");

  std::vector<TaskOutcome> outcomes(tasks.size());
  std::vector<int> attempts(tasks.size(), 0);
  std::deque<size_t> pending;
  for (size_t i = 0; i < tasks.size(); ++i) pending.push_back(i);
  std::vector<RunningWorker> running;

  // Sidecar directory: resolved pre-fork so parent and children agree. An
  // auto-created one lives only for this Run.
  std::string telemetry_dir = options_.telemetry_dir;
  bool telemetry_dir_owned = false;
  if (options_.ship_telemetry && telemetry_dir.empty()) {
    telemetry_dir = (std::filesystem::temp_directory_path() /
                     ("fairem-telemetry-" + std::to_string(::getpid())))
                        .string();
    telemetry_dir_owned = true;
  }
  auto cleanup_telemetry_dir = [&]() {
    if (!telemetry_dir_owned) return;
    std::error_code ec;
    std::filesystem::remove_all(telemetry_dir, ec);
  };

  // One merge per (task, attempt): a delta that arrives on both the pipe
  // and a sidecar must not double count. Profiles dedup separately — a
  // PROF frame can land without its TELE sibling and vice versa.
  std::set<std::pair<size_t, int>> telemetry_merged;
  std::set<std::pair<size_t, int>> profiles_merged_keys;

  size_t done_count = 0;
  size_t failed_count = 0;
  auto report_progress = [&](double last_cell_seconds) {
    if (!options_.on_progress) return;
    ProgressSnapshot snap;
    snap.total = tasks.size();
    snap.done = done_count;
    snap.running = running.size();
    size_t retrying = 0;
    for (size_t idx : pending) {
      if (attempts[idx] > 0) ++retrying;
    }
    snap.retrying = retrying;
    snap.failed = failed_count;
    snap.last_cell_seconds = last_cell_seconds;
    options_.on_progress(snap);
  };

  auto reap_everything = [&]() {
    for (RunningWorker& worker : running) {
      KillWorker(worker.pid);
      int status = 0;
      while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
      }
      ::close(worker.pipe_fd);
    }
    running.clear();
  };

  auto spawn = [&](size_t index) -> Status {
    int fds[2];
    if (::pipe(fds) != 0) {
      return Status::IOError(std::string("pipe failed: ") +
                             std::strerror(errno));
    }
    ++attempts[index];
    const int attempt = attempts[index];
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return Status::IOError(std::string("fork failed: ") +
                             std::strerror(errno));
    }
    if (pid == 0) {
      // ----- worker child -----
      // Own process group, so the watchdog can kill the worker and anything
      // it spawned in one shot, and terminal Ctrl-C reaches only the
      // supervisor (which shuts the fleet down cooperatively).
      ::setpgid(0, 0);
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGTERM, SIG_DFL);
#ifdef __linux__
      // If the supervisor itself is SIGKILLed, die with it — no orphans.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      ::close(fds[0]);
      // Inherited read ends of sibling pipes are the parent's business.
      for (const RunningWorker& other : running) ::close(other.pipe_fd);
      if (!ApplyWorkerLimits(options_)) std::_Exit(kWorkerExitProtocol);
      // fork() cleared the interval timer; re-arm so this worker samples
      // its own work, into a buffer reset of the parent's samples, with its
      // stacks rooted at process:worker_<pid>.
      const bool profiling = Profiler::Global().active();
      if (profiling) {
        (void)Profiler::Global().RestartAfterFork(
            "worker_" + std::to_string(::getpid()));
      }
      if (attempt > 1) {
        // Probabilistic failpoints draw fresh per respawn, so a transient
        // injected crash behaves like a transient real one.
        FailpointRegistry::Global().ReseedStreams(
            static_cast<uint64_t>(attempt));
      }
      // The fork copied the parent's metric values and trace buffer; the
      // baseline lets the worker ship only what the task itself adds.
      MetricsSnapshot telemetry_baseline;
      size_t span_watermark = 0;
      if (options_.ship_telemetry) {
        telemetry_baseline = MetricsRegistry::Global().Snapshot();
        span_watermark = Tracer::Global().EventCount();
      }
      // noexcept barrier: an exception escaping the task (e.g. bad_alloc
      // under RLIMIT_AS) must terminate HERE as a contained crash — if it
      // unwound further it would re-enter the forked copy of the caller's
      // stack (worst case: a test harness's catch block resumes running the
      // caller's code in the child).
      Result<std::string> result =
          [&]() noexcept { return tasks[index].run(); }();
      std::string wire;
      int exit_code;
      if (result.ok()) {
        wire = std::move(result).value();
        exit_code = kWorkerExitOk;
      } else {
        wire = std::to_string(static_cast<int>(result.status().code())) +
               "\n" + result.status().message();
        exit_code = kWorkerExitTaskError;
      }
      if (options_.ship_telemetry) {
        // Samples must land in the metrics registry before the snapshot
        // below diffs it, so the per-stage counters ship with the delta.
        std::string folded;
        if (profiling) {
          (void)Profiler::Global().Stop();
          Profiler::Global().ExportMetrics();
          folded = Profiler::Global().Collect().ToText();
        }
        WorkerTelemetry telemetry;
        telemetry.task_key = tasks[index].key;
        telemetry.attempt = attempt;
        telemetry.pid = static_cast<int64_t>(::getpid());
        telemetry.metrics = DiffSnapshots(telemetry_baseline,
                                          MetricsRegistry::Global().Snapshot());
        telemetry.spans = Tracer::Global().EventsSince(span_watermark);
        // Sidecars before the pipe: if the writes below never complete the
        // parent can still sweep the files up. Best effort — a worker that
        // cannot write them still ships on the pipe.
        (void)WriteTelemetrySidecar(telemetry_dir, telemetry);
        std::vector<TelemetryFrame> frames;
        frames.push_back(
            {kFrameTelemetry, SerializeWorkerTelemetry(telemetry)});
        if (!folded.empty()) {
          (void)WriteProfileSidecar(telemetry_dir, tasks[index].key, attempt,
                                    folded);
          frames.push_back({kFrameProfile, std::move(folded)});
        }
        wire = EncodeTelemetryWire(frames, wire);
      }
      if (!WriteAll(fds[1], wire)) std::_Exit(kWorkerExitProtocol);
      ::close(fds[1]);
      // Injection site for shipped-then-crashed workers: with a crash
      // action armed here the parent sees the full wire AND a sidecar AND a
      // crash exit — the double-delivery dedup's worst case.
      (void)CheckFailpoint("supervisor_ship");
      // _Exit: no atexit hooks — the parent owns metrics/trace files.
      std::_Exit(exit_code);
    }
    // ----- parent -----
    ::setpgid(pid, pid);  // mirror the child's setpgid to close the race
    ::close(fds[1]);
    int fd_flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, fd_flags | O_NONBLOCK);
    spawned->Increment();
    RunningWorker worker;
    worker.task_index = index;
    worker.pid = pid;
    worker.pipe_fd = fds[0];
    worker.start = std::chrono::steady_clock::now();
    running.push_back(std::move(worker));
    FAIREM_LOG(DEBUG) << "worker spawned" << LogKv("key", tasks[index].key)
                      << LogKv("pid", pid) << LogKv("attempt", attempt);
    return Status::OK();
  };

  // Finalizes one reaped worker: records the outcome or queues a respawn.
  auto settle = [&](const RunningWorker& worker, int status,
                    const rusage& usage) {
    const size_t index = worker.task_index;
    const std::string& key = tasks[index].key;
    const int attempt = attempts[index];
    // Strip the telemetry frames (if any) off the wire; everything below
    // interprets only the payload. A worker killed mid-ship leaves a
    // truncated frame, which degrades to "no telemetry". Unknown frame
    // types from a newer worker are skipped inside ParseTelemetryWire.
    TelemetrySplit split;
    bool profile_seen = false;
    if (options_.ship_telemetry) {
      TelemetryWireParse parsed = ParseTelemetryWire(worker.received);
      split.payload = parsed.framed ? parsed.payload : worker.received;
      for (TelemetryFrame& frame : parsed.frames) {
        if (frame.type == kFrameTelemetry && !split.has_telemetry) {
          split.has_telemetry = true;
          split.telemetry_json = std::move(frame.bytes);
        } else if (frame.type == kFrameProfile) {
          profile_seen = true;
          if (profiles_merged_keys.insert({index, attempt}).second) {
            Profiler::Global().AbsorbFolded(frame.bytes);
            // Registered lazily: a profiler-off run never ships a PROF
            // frame and must not grow a fairem.profile.* metric.
            MetricsRegistry::Global()
                .GetCounter("fairem.profile.profiles_merged")
                ->Increment();
          }
        }
      }
    } else {
      split.payload = worker.received;
    }
    bool telemetry_seen = false;
    if (split.has_telemetry) {
      Result<WorkerTelemetry> telemetry =
          ParseWorkerTelemetry(split.telemetry_json);
      if (telemetry.ok()) {
        telemetry_seen = true;
        if (telemetry_merged.insert({index, attempt}).second) {
          AbsorbWorkerTelemetry(telemetry.value());
        }
      } else {
        FAIREM_LOG(WARN) << "worker telemetry unparseable, trying sidecar"
                         << LogKv("key", key)
                         << LogKv("status", telemetry.status().ToString());
      }
    }
    if (options_.ship_telemetry) {
      const std::string sidecar =
          TelemetrySidecarPath(telemetry_dir, key, attempt);
      if (!telemetry_seen) {
        // Crash/timeout path: the pipe copy never landed, sweep the file.
        Result<WorkerTelemetry> telemetry = LoadTelemetrySidecarFile(sidecar);
        if (telemetry.ok() &&
            telemetry_merged.insert({index, attempt}).second) {
          AbsorbWorkerTelemetry(telemetry.value());
          sidecars_swept->Increment();
        }
      }
      std::error_code ec;
      std::filesystem::remove(sidecar, ec);
      const std::string profile_sidecar =
          ProfileSidecarPath(telemetry_dir, key, attempt);
      if (!profile_seen) {
        // Same sweep for the profile: only a worker that sampled writes
        // one, so a missing file just means profiling was off or the
        // worker died before its first flush.
        Result<std::string> folded = LoadProfileSidecarFile(profile_sidecar);
        if (folded.ok() && !folded.value().empty() &&
            profiles_merged_keys.insert({index, attempt}).second) {
          Profiler::Global().AbsorbFolded(folded.value());
          MetricsRegistry::Global()
              .GetCounter("fairem.profile.sidecars_swept")
              ->Increment();
        }
      }
      std::filesystem::remove(profile_sidecar, ec);
    }
    TaskOutcome out;
    out.attempts = attempt;
    out.exit_status = status;
    out.wall_seconds = SecondsSince(worker.start);
    out.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
    bool respawnable = false;
    if (worker.timed_out) {
      out.kind = TaskOutcome::Kind::kTimedOut;
      out.status = Status::Internal(
          "worker for '" + key + "' exceeded its " +
          FormatDouble(options_.cell_timeout_s, 1) +
          "s wall deadline and was killed by the watchdog");
      respawnable = true;
    } else if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == kWorkerExitOk) {
        out.kind = TaskOutcome::Kind::kOk;
        out.payload = split.payload;
      } else if (code == kWorkerExitTaskError) {
        out.kind = TaskOutcome::Kind::kFailed;
        out.status = ParseShippedStatus(split.payload);
        respawnable = IsRetryableStatus(out.status);
      } else {
        out.kind = TaskOutcome::Kind::kCrashed;
        out.status = Status::Internal("worker for '" + key +
                                      "' exited with code " +
                                      std::to_string(code));
        respawnable = true;
      }
    } else {
      const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
      out.kind = TaskOutcome::Kind::kCrashed;
      out.status = Status::Internal("worker for '" + key +
                                    "' was killed by signal " +
                                    std::to_string(sig));
      respawnable = true;
    }
    wall_hist->Observe(out.wall_seconds);
    if (out.peak_rss_mb > max_rss->value()) max_rss->Set(out.peak_rss_mb);
    FAIREM_LOG(INFO) << "worker finished" << LogKv("key", key)
                     << LogKv("outcome", TaskOutcomeKindName(out.kind))
                     << LogKv("attempt", out.attempts)
                     << LogKv("wall_s", FormatDouble(out.wall_seconds, 3))
                     << LogKv("peak_rss_mb", FormatDouble(out.peak_rss_mb, 1))
                     << LogKv("exit_status", out.exit_status);
    if (out.kind != TaskOutcome::Kind::kOk && respawnable &&
        attempts[index] < options_.max_attempts) {
      respawns->Increment();
      FAIREM_LOG(WARN) << "respawning worker" << LogKv("key", key)
                       << LogKv("next_attempt", attempts[index] + 1)
                       << LogKv("status", out.status.ToString());
      pending.push_back(index);
      report_progress(out.wall_seconds);
      return;
    }
    switch (out.kind) {
      case TaskOutcome::Kind::kOk:
        tasks_ok->Increment();
        break;
      case TaskOutcome::Kind::kFailed:
        tasks_failed->Increment();
        break;
      case TaskOutcome::Kind::kCrashed:
        tasks_crashed->Increment();
        break;
      case TaskOutcome::Kind::kTimedOut:
        tasks_timed_out->Increment();
        break;
      case TaskOutcome::Kind::kCancelled:
        break;
    }
    ++done_count;
    if (out.kind != TaskOutcome::Kind::kOk) ++failed_count;
    double wall_seconds = out.wall_seconds;
    outcomes[index] = std::move(out);
    report_progress(wall_seconds);
  };

  while (!pending.empty() || !running.empty()) {
    if (ShutdownGuard::requested()) {
      const int sig = ShutdownGuard::signal_number();
      FAIREM_LOG(WARN) << "shutdown requested, reaping workers"
                       << LogKv("signal", sig)
                       << LogKv("workers", running.size())
                       << LogKv("pending_tasks", pending.size());
      reap_everything();
      cleanup_telemetry_dir();
      shutdowns->Increment();
      return Status::Cancelled("supervised run interrupted by signal " +
                               std::to_string(sig));
    }
    while (static_cast<int>(running.size()) < options_.jobs &&
           !pending.empty()) {
      size_t index = pending.front();
      pending.pop_front();
      if (Status st = spawn(index); !st.ok()) {
        reap_everything();
        cleanup_telemetry_dir();
        return st;
      }
    }
    report_progress(-1.0);
    bool progressed = false;
    for (size_t wi = 0; wi < running.size();) {
      RunningWorker& worker = running[wi];
      DrainPipe(&worker);
      int status = 0;
      rusage usage;
      std::memset(&usage, 0, sizeof(usage));
      pid_t reaped = ::wait4(worker.pid, &status, WNOHANG, &usage);
      if (reaped == worker.pid) {
        DrainPipe(&worker);  // bytes written between drain and exit
        ::close(worker.pipe_fd);
        // Remove before settling so progress callbacks see an accurate
        // running count.
        RunningWorker finished = std::move(worker);
        running.erase(running.begin() + static_cast<long>(wi));
        settle(finished, status, usage);
        progressed = true;
        continue;
      }
      if (!worker.timed_out && options_.cell_timeout_s > 0.0 &&
          SecondsSince(worker.start) > options_.cell_timeout_s) {
        worker.timed_out = true;
        watchdog_kills->Increment();
        FAIREM_LOG(WARN) << "watchdog deadline exceeded, killing worker"
                         << LogKv("key", tasks[worker.task_index].key)
                         << LogKv("pid", worker.pid)
                         << LogKv("deadline_s",
                                  FormatDouble(options_.cell_timeout_s, 1));
        KillWorker(worker.pid);
      }
      ++wi;
    }
    if (!progressed && !running.empty()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.poll_interval_s));
    }
  }
  cleanup_telemetry_dir();
  return outcomes;
}

}  // namespace fairem
