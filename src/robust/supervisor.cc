#include "src/robust/supervisor.h"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/telemetry.h"
#include "src/robust/retry.h"
#include "src/robust/worker_process.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

std::atomic<int> g_shutdown_signal{0};

void OnShutdownSignal(int sig) {
  // Only the lock-free store: everything else waits for the poll loop.
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

/// A worker child currently being supervised.
struct RunningWorker {
  size_t task_index = 0;
  WorkerProcess proc;
  bool timed_out = false;
};

}  // namespace

const char* TaskOutcomeKindName(TaskOutcome::Kind kind) {
  switch (kind) {
    case TaskOutcome::Kind::kOk:
      return "ok";
    case TaskOutcome::Kind::kFailed:
      return "failed";
    case TaskOutcome::Kind::kCrashed:
      return "crashed";
    case TaskOutcome::Kind::kTimedOut:
      return "timed_out";
    case TaskOutcome::Kind::kCancelled:
      return "cancelled";
  }
  return "?";
}

ShutdownGuard::ShutdownGuard() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
  auto* saved_int = new struct sigaction;
  auto* saved_term = new struct sigaction;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, saved_int);
  ::sigaction(SIGTERM, &sa, saved_term);
  saved_int_ = saved_int;
  saved_term_ = saved_term;
}

ShutdownGuard::~ShutdownGuard() {
  ::sigaction(SIGINT, static_cast<struct sigaction*>(saved_int_), nullptr);
  ::sigaction(SIGTERM, static_cast<struct sigaction*>(saved_term_), nullptr);
  delete static_cast<struct sigaction*>(saved_int_);
  delete static_cast<struct sigaction*>(saved_term_);
}

bool ShutdownGuard::requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownGuard::signal_number() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

int InterruptExitCode(int sig) { return 128 + (sig > 0 ? sig : SIGINT); }

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.poll_interval_s <= 0.0) options_.poll_interval_s = 0.01;
}

Result<std::vector<TaskOutcome>> Supervisor::Run(
    const std::vector<Task>& tasks) {
  static Counter* spawned = MetricsRegistry::Global().GetCounter(
      "fairem.supervisor.workers_spawned");
  static Counter* respawns =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.respawns");
  static Counter* tasks_ok =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.tasks_ok");
  static Counter* tasks_failed =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.tasks_failed");
  static Counter* tasks_crashed =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.tasks_crashed");
  static Counter* tasks_timed_out = MetricsRegistry::Global().GetCounter(
      "fairem.supervisor.tasks_timed_out");
  static Counter* watchdog_kills = MetricsRegistry::Global().GetCounter(
      "fairem.supervisor.watchdog_kills");
  static Counter* shutdowns =
      MetricsRegistry::Global().GetCounter("fairem.supervisor.shutdowns");
  static Histogram* wall_hist = MetricsRegistry::Global().GetHistogram(
      "fairem.supervisor.task_wall_seconds");
  static Gauge* max_rss = MetricsRegistry::Global().GetGauge(
      "fairem.supervisor.max_peak_rss_mb");
  static Counter* sidecars_swept = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.sidecars_swept");

  std::vector<TaskOutcome> outcomes(tasks.size());
  std::vector<int> attempts(tasks.size(), 0);
  std::deque<size_t> pending;
  for (size_t i = 0; i < tasks.size(); ++i) pending.push_back(i);
  std::vector<RunningWorker> running;

  // Sidecar directory: resolved pre-fork so parent and children agree. An
  // auto-created one lives only for this Run.
  std::string telemetry_dir = options_.telemetry_dir;
  bool telemetry_dir_owned = false;
  if (options_.ship_telemetry && telemetry_dir.empty()) {
    telemetry_dir = (std::filesystem::temp_directory_path() /
                     ("fairem-telemetry-" + std::to_string(::getpid())))
                        .string();
    telemetry_dir_owned = true;
  }
  auto cleanup_telemetry_dir = [&]() {
    if (!telemetry_dir_owned) return;
    std::error_code ec;
    std::filesystem::remove_all(telemetry_dir, ec);
  };

  // One merge per (task, attempt): a delta that arrives on both the pipe
  // and a sidecar must not double count. Profiles dedup separately — a
  // PROF frame can land without its TELE sibling and vice versa.
  std::set<std::pair<size_t, int>> telemetry_merged;
  std::set<std::pair<size_t, int>> profiles_merged_keys;

  size_t done_count = 0;
  size_t failed_count = 0;
  auto report_progress = [&](double last_cell_seconds) {
    if (!options_.on_progress) return;
    ProgressSnapshot snap;
    snap.total = tasks.size();
    snap.done = done_count;
    snap.running = running.size();
    size_t retrying = 0;
    for (size_t idx : pending) {
      if (attempts[idx] > 0) ++retrying;
    }
    snap.retrying = retrying;
    snap.failed = failed_count;
    snap.last_cell_seconds = last_cell_seconds;
    options_.on_progress(snap);
  };

  auto reap_everything = [&]() {
    for (RunningWorker& worker : running) worker.proc.KillAndReap();
    running.clear();
  };

  auto spawn = [&](size_t index) -> Status {
    ++attempts[index];
    const int attempt = attempts[index];
    WorkerSpawnOptions spawn_options;
    spawn_options.task_key = tasks[index].key;
    spawn_options.attempt = attempt;
    spawn_options.max_rss_mb = options_.cell_max_rss_mb;
    spawn_options.max_cpu_s = options_.cell_max_cpu_s;
    spawn_options.ship_telemetry = options_.ship_telemetry;
    spawn_options.telemetry_dir = options_.ship_telemetry ? telemetry_dir : "";
    // Probabilistic failpoints draw fresh per respawn, so a transient
    // injected crash behaves like a transient real one. The first attempt
    // keeps the parent's streams for deterministic single-shot tests.
    spawn_options.failpoint_reseed =
        attempt > 1 ? static_cast<uint64_t>(attempt) : 0;
    spawn_options.ship_failpoint = "supervisor_ship";
    // Inherited read ends of sibling pipes are the parent's business.
    for (const RunningWorker& other : running) {
      spawn_options.close_in_child.push_back(other.proc.pipe_fd());
    }
    FAIREM_ASSIGN_OR_RETURN(
        WorkerProcess proc,
        WorkerProcess::Spawn(tasks[index].run, spawn_options));
    spawned->Increment();
    RunningWorker worker;
    worker.task_index = index;
    worker.proc = std::move(proc);
    FAIREM_LOG(DEBUG) << "worker spawned" << LogKv("key", tasks[index].key)
                      << LogKv("pid", worker.proc.pid())
                      << LogKv("attempt", attempt);
    running.push_back(std::move(worker));
    return Status::OK();
  };

  // Finalizes one reaped worker: records the outcome or queues a respawn.
  auto settle = [&](RunningWorker& worker, int status, const rusage& usage,
                    double wall_seconds) {
    const size_t index = worker.task_index;
    const std::string& key = tasks[index].key;
    const int attempt = attempts[index];
    const std::string received = worker.proc.TakeReceived();
    // Strip the telemetry frames (if any) off the wire; everything below
    // interprets only the payload. A worker killed mid-ship leaves a
    // truncated frame, which degrades to "no telemetry". Unknown frame
    // types from a newer worker are skipped inside ParseTelemetryWire.
    TelemetrySplit split;
    bool profile_seen = false;
    if (options_.ship_telemetry) {
      TelemetryWireParse parsed = ParseTelemetryWire(received);
      split.payload = parsed.framed ? parsed.payload : received;
      for (TelemetryFrame& frame : parsed.frames) {
        if (frame.type == kFrameTelemetry && !split.has_telemetry) {
          split.has_telemetry = true;
          split.telemetry_json = std::move(frame.bytes);
        } else if (frame.type == kFrameProfile) {
          profile_seen = true;
          if (profiles_merged_keys.insert({index, attempt}).second) {
            Profiler::Global().AbsorbFolded(frame.bytes);
            // Registered lazily: a profiler-off run never ships a PROF
            // frame and must not grow a fairem.profile.* metric.
            MetricsRegistry::Global()
                .GetCounter("fairem.profile.profiles_merged")
                ->Increment();
          }
        }
      }
    } else {
      split.payload = received;
    }
    bool telemetry_seen = false;
    if (split.has_telemetry) {
      Result<WorkerTelemetry> telemetry =
          ParseWorkerTelemetry(split.telemetry_json);
      if (telemetry.ok()) {
        telemetry_seen = true;
        if (telemetry_merged.insert({index, attempt}).second) {
          AbsorbWorkerTelemetry(telemetry.value());
        }
      } else {
        FAIREM_LOG(WARN) << "worker telemetry unparseable, trying sidecar"
                         << LogKv("key", key)
                         << LogKv("status", telemetry.status().ToString());
      }
    }
    if (options_.ship_telemetry) {
      const std::string sidecar =
          TelemetrySidecarPath(telemetry_dir, key, attempt);
      if (!telemetry_seen) {
        // Crash/timeout path: the pipe copy never landed, sweep the file.
        Result<WorkerTelemetry> telemetry = LoadTelemetrySidecarFile(sidecar);
        if (telemetry.ok() &&
            telemetry_merged.insert({index, attempt}).second) {
          AbsorbWorkerTelemetry(telemetry.value());
          sidecars_swept->Increment();
        }
      }
      std::error_code ec;
      std::filesystem::remove(sidecar, ec);
      const std::string profile_sidecar =
          ProfileSidecarPath(telemetry_dir, key, attempt);
      if (!profile_seen) {
        // Same sweep for the profile: only a worker that sampled writes
        // one, so a missing file just means profiling was off or the
        // worker died before its first flush.
        Result<std::string> folded = LoadProfileSidecarFile(profile_sidecar);
        if (folded.ok() && !folded.value().empty() &&
            profiles_merged_keys.insert({index, attempt}).second) {
          Profiler::Global().AbsorbFolded(folded.value());
          MetricsRegistry::Global()
              .GetCounter("fairem.profile.sidecars_swept")
              ->Increment();
        }
      }
      std::filesystem::remove(profile_sidecar, ec);
    }
    TaskOutcome out;
    out.attempts = attempt;
    out.exit_status = status;
    out.wall_seconds = wall_seconds;
    out.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
    bool respawnable = false;
    if (worker.timed_out) {
      out.kind = TaskOutcome::Kind::kTimedOut;
      out.status = Status::Internal(
          "worker for '" + key + "' exceeded its " +
          FormatDouble(options_.cell_timeout_s, 1) +
          "s wall deadline and was killed by the watchdog");
      respawnable = true;
    } else if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == kWorkerExitOk) {
        out.kind = TaskOutcome::Kind::kOk;
        out.payload = split.payload;
      } else if (code == kWorkerExitTaskError) {
        out.kind = TaskOutcome::Kind::kFailed;
        out.status = ParseShippedStatus(split.payload);
        respawnable = IsRetryableStatus(out.status);
      } else {
        out.kind = TaskOutcome::Kind::kCrashed;
        out.status = Status::Internal("worker for '" + key +
                                      "' exited with code " +
                                      std::to_string(code));
        respawnable = true;
      }
    } else {
      const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
      out.kind = TaskOutcome::Kind::kCrashed;
      out.status = Status::Internal("worker for '" + key +
                                    "' was killed by signal " +
                                    std::to_string(sig));
      respawnable = true;
    }
    wall_hist->Observe(out.wall_seconds);
    if (out.peak_rss_mb > max_rss->value()) max_rss->Set(out.peak_rss_mb);
    FAIREM_LOG(INFO) << "worker finished" << LogKv("key", key)
                     << LogKv("outcome", TaskOutcomeKindName(out.kind))
                     << LogKv("attempt", out.attempts)
                     << LogKv("wall_s", FormatDouble(out.wall_seconds, 3))
                     << LogKv("peak_rss_mb", FormatDouble(out.peak_rss_mb, 1))
                     << LogKv("exit_status", out.exit_status);
    if (out.kind != TaskOutcome::Kind::kOk && respawnable &&
        attempts[index] < options_.max_attempts) {
      respawns->Increment();
      FAIREM_LOG(WARN) << "respawning worker" << LogKv("key", key)
                       << LogKv("next_attempt", attempts[index] + 1)
                       << LogKv("status", out.status.ToString());
      pending.push_back(index);
      report_progress(out.wall_seconds);
      return;
    }
    switch (out.kind) {
      case TaskOutcome::Kind::kOk:
        tasks_ok->Increment();
        break;
      case TaskOutcome::Kind::kFailed:
        tasks_failed->Increment();
        break;
      case TaskOutcome::Kind::kCrashed:
        tasks_crashed->Increment();
        break;
      case TaskOutcome::Kind::kTimedOut:
        tasks_timed_out->Increment();
        break;
      case TaskOutcome::Kind::kCancelled:
        break;
    }
    ++done_count;
    if (out.kind != TaskOutcome::Kind::kOk) ++failed_count;
    outcomes[index] = std::move(out);
    report_progress(wall_seconds);
  };

  while (!pending.empty() || !running.empty()) {
    if (ShutdownGuard::requested()) {
      const int sig = ShutdownGuard::signal_number();
      FAIREM_LOG(WARN) << "shutdown requested, reaping workers"
                       << LogKv("signal", sig)
                       << LogKv("workers", running.size())
                       << LogKv("pending_tasks", pending.size());
      reap_everything();
      cleanup_telemetry_dir();
      shutdowns->Increment();
      return Status::Cancelled("supervised run interrupted by signal " +
                               std::to_string(sig));
    }
    while (static_cast<int>(running.size()) < options_.jobs &&
           !pending.empty()) {
      size_t index = pending.front();
      pending.pop_front();
      if (Status st = spawn(index); !st.ok()) {
        reap_everything();
        cleanup_telemetry_dir();
        return st;
      }
    }
    report_progress(-1.0);
    bool progressed = false;
    for (size_t wi = 0; wi < running.size();) {
      RunningWorker& worker = running[wi];
      worker.proc.Drain();
      const double age = worker.proc.AgeSeconds();
      int status = 0;
      rusage usage;
      if (worker.proc.TryReap(&status, &usage)) {
        // Remove before settling so progress callbacks see an accurate
        // running count.
        RunningWorker finished = std::move(worker);
        running.erase(running.begin() + static_cast<long>(wi));
        settle(finished, status, usage, age);
        progressed = true;
        continue;
      }
      if (!worker.timed_out && options_.cell_timeout_s > 0.0 &&
          age > options_.cell_timeout_s) {
        worker.timed_out = true;
        watchdog_kills->Increment();
        FAIREM_LOG(WARN) << "watchdog deadline exceeded, killing worker"
                         << LogKv("key", tasks[worker.task_index].key)
                         << LogKv("pid", worker.proc.pid())
                         << LogKv("deadline_s",
                                  FormatDouble(options_.cell_timeout_s, 1));
        worker.proc.Kill();
      }
      ++wi;
    }
    if (!progressed && !running.empty()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.poll_interval_s));
    }
  }
  cleanup_telemetry_dir();
  return outcomes;
}

}  // namespace fairem
